"""Training checkpoints: save/restore model parameters and quantization.

A checkpoint stores every parameter and buffer (via ``state_dict``) plus,
for approximate layers, the frozen quantization parameters -- enough to
resume retraining or to re-evaluate a retrained model without re-running
calibration.
"""

from __future__ import annotations

from pathlib import Path

import numpy as np

from repro.errors import ReproError
from repro.nn.approx import _ApproxBase
from repro.nn.module import Module
from repro.nn.quant import QuantParams


def _approx_layers_named(model: Module):
    from repro.retrain.mixed import named_approx_layers

    return list(named_approx_layers(model))


def save_checkpoint(model: Module, path: str | Path) -> None:
    """Write parameters, buffers, and quantization state to ``path`` (.npz)."""
    payload: dict[str, np.ndarray] = {}
    for key, value in model.state_dict().items():
        payload[f"state/{key}"] = value
    for name, layer in _approx_layers_named(model):
        qs = layer.quant
        if not qs.frozen:
            continue
        payload[f"quant/{name}"] = np.array(
            [
                qs.w_qparams.scale,
                qs.w_qparams.zero_point,
                qs.x_qparams.scale,
                qs.x_qparams.zero_point,
                qs.bits,
            ],
            dtype=np.float64,
        )
    np.savez_compressed(Path(path), **payload)


def load_checkpoint(model: Module, path: str | Path) -> None:
    """Restore a checkpoint written by :func:`save_checkpoint` in place.

    The model must have the same architecture (and, for quantization
    entries, the same approximate layers) as the one saved.
    """
    path = Path(path)
    if not path.exists():
        raise ReproError(f"no such checkpoint: {path}")
    with np.load(path) as data:
        state = {
            key[len("state/"):]: data[key]
            for key in data.files
            if key.startswith("state/")
        }
        quant = {
            key[len("quant/"):]: data[key]
            for key in data.files
            if key.startswith("quant/")
        }
    model.load_state_dict(state)
    layers = dict(_approx_layers_named(model))
    for name, packed in quant.items():
        if name not in layers:
            raise ReproError(f"checkpoint has quant state for unknown layer {name!r}")
        layer: _ApproxBase = layers[name]
        bits = int(packed[4])
        layer.quant.w_qparams = QuantParams(float(packed[0]), int(packed[1]), bits)
        layer.quant.x_qparams = QuantParams(float(packed[2]), int(packed[3]), bits)
        layer.calibrating = False
