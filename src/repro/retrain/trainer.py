"""Training and evaluation loops.

Defaults follow the paper's retraining setup: Adam, batch size 64, and the
stepped learning-rate schedule (1e-3 / 5e-4 / 2.5e-4 over thirds of the
run).  Benchmarks shrink ``epochs``/dataset sizes; the schedule compresses
proportionally via :func:`repro.optim.schedulers.paper_lr_schedule`.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.core import execcore
from repro.data.augment import random_crop_flip
from repro.data.dataset import DataLoader
from repro.errors import ConfigError
from repro.nn.losses import cross_entropy
from repro.nn.module import Module
from repro.obs.health import get_monitor
from repro.obs.trace import get_tracer
from repro.optim.adam import Adam
from repro.optim.schedulers import paper_lr_schedule
from repro.optim.sgd import SGD

_TRACE = get_tracer()
_HEALTH = get_monitor()


@dataclass
class TrainConfig:
    """Hyperparameters for one training run (paper defaults scaled by use)."""

    epochs: int = 30
    batch_size: int = 64
    base_lr: float = 1e-3
    optimizer: str = "adam"  # "adam" | "sgd"
    momentum: float = 0.9  # sgd only
    weight_decay: float = 0.0
    augment: bool = False
    seed: int = 0
    log_every: int = 0  # batches; 0 disables prints
    max_batches_per_epoch: int | None = None  # cap for quick sweeps


@dataclass
class TrainHistory:
    """Per-epoch records produced by :meth:`Trainer.fit`."""

    train_loss: list[float] = field(default_factory=list)
    train_top1: list[float] = field(default_factory=list)
    eval_top1: list[float] = field(default_factory=list)
    eval_top5: list[float] = field(default_factory=list)
    lr: list[float] = field(default_factory=list)
    # Wall-clock seconds spent in the training loop of each epoch, and the
    # corresponding samples/sec throughput (training batches only, eval
    # excluded) -- lets serving-vs-training perf be read side by side.
    epoch_time: list[float] = field(default_factory=list)
    samples_per_sec: list[float] = field(default_factory=list)


def topk_correct(logits: np.ndarray, labels: np.ndarray, k: int) -> int:
    """Number of samples whose label is among the top-k logits."""
    if k == 1:
        return int((logits.argmax(axis=1) == labels).sum())
    topk = np.argpartition(-logits, k - 1, axis=1)[:, :k]
    return int((topk == labels[:, None]).any(axis=1).sum())


def evaluate(
    model: Module, data, batch_size: int = 128
) -> tuple[float, float]:
    """Top-1 and top-5 accuracy of ``model`` on ``data`` (fractions).

    The model's training/eval mode is restored on exit -- a model that was
    deliberately in eval mode stays there (dropout and BN running-stat
    updates are not silently re-enabled).
    """
    loader = DataLoader(data, batch_size=batch_size, shuffle=False)
    was_training = model.training
    model.eval()
    top1 = top5 = total = 0
    try:
        with _TRACE.span("trainer.evaluate", cat="trainer"), no_grad():
            for x, y in loader:
                logits = model(Tensor(x)).data
                top1 += topk_correct(logits, y, 1)
                top5 += topk_correct(logits, y, min(5, logits.shape[1]))
                total += len(y)
    finally:
        if was_training:
            model.train()
    if total == 0:
        raise ConfigError("evaluate() on an empty dataset")
    return top1 / total, top5 / total


class Trainer:
    """Gradient-descent training with the paper's schedule."""

    def __init__(self, model: Module, config: TrainConfig | None = None):
        self.model = model
        self.config = config or TrainConfig()
        params = model.parameters()
        if self.config.optimizer == "adam":
            self.optimizer = Adam(
                params,
                lr=self.config.base_lr,
                weight_decay=self.config.weight_decay,
            )
        elif self.config.optimizer == "sgd":
            self.optimizer = SGD(
                params,
                lr=self.config.base_lr,
                momentum=self.config.momentum,
                weight_decay=self.config.weight_decay,
            )
        else:
            raise ConfigError(f"unknown optimizer {self.config.optimizer!r}")
        self.schedule = paper_lr_schedule(
            self.optimizer, self.config.epochs, self.config.base_lr
        )
        # Resume bookkeeping (see repro.retrain.checkpoint): epochs already
        # trained, the epoch the next fit() starts from (consumed once, so a
        # fresh fit() after a completed one retrains from scratch as before),
        # and a loader RNG snapshot to install into the next fit()'s loader.
        self.epochs_done = 0
        self._start_epoch = 0
        self._pending_loader_rng: dict | None = None
        self._loader: DataLoader | None = None

    def loader_rng_state(self) -> dict | None:
        """Shuffle-RNG snapshot of the most recent :meth:`fit` loader."""
        if self._loader is None:
            return None
        return self._loader.rng_state()

    def fit(self, train_data, eval_data=None, on_epoch_end=None) -> TrainHistory:
        """Train for ``config.epochs`` epochs; returns per-epoch history.

        Args:
            train_data: Training dataset.
            eval_data: Optional eval dataset (records per-epoch accuracy).
            on_epoch_end: Optional ``f(epoch, history)`` hook called after
                each epoch's bookkeeping (checkpoint-on-epoch, kill
                injection in tests); ``epoch`` is 0-based.

        A trainer restored via
        :func:`repro.retrain.checkpoint.load_training_state` continues from
        the saved epoch instead of epoch 0 (the restore is consumed by the
        next ``fit`` call only).
        """
        with _TRACE.span("trainer.fit", cat="trainer"):
            return self._fit(train_data, eval_data, on_epoch_end)

    def _fit(self, train_data, eval_data, on_epoch_end) -> TrainHistory:
        cfg = self.config
        history = TrainHistory()
        augment = random_crop_flip if cfg.augment else None
        loader = DataLoader(
            train_data,
            batch_size=cfg.batch_size,
            shuffle=True,
            augment=augment,
            seed=cfg.seed,
        )
        self._loader = loader
        start_epoch, self._start_epoch = self._start_epoch, 0
        if self._pending_loader_rng is not None:
            loader.set_rng_state(self._pending_loader_rng)
            self._pending_loader_rng = None
        if _HEALTH.enabled:
            _HEALTH.register_model(self.model)
        # Resolve the LUT-GEMM execution backend before the first epoch:
        # this triggers the one-time C-kernel compile and backward
        # self-check *outside* the timed epoch loop and records which
        # backend the run actually used.
        backend = execcore.backend_info()
        _TRACE.count(f"trainer.backend.forward.{backend['forward_backend']}")
        _TRACE.count(f"trainer.backend.backward.{backend['backward_backend']}")
        if cfg.log_every:
            print(
                f"execution core: forward={backend['forward_backend']}, "
                f"backward={backend['backward_backend']}, "
                f"threads={backend['threads']}"
            )
        last_finite_loss: float | None = None
        for epoch in range(start_epoch, cfg.epochs):
            lr = self.schedule.set_epoch(epoch)
            losses: list[float] = []
            correct = total = 0
            epoch_start = time.perf_counter()
            with _TRACE.span("trainer.epoch", cat="trainer",
                             args={"epoch": epoch}):
                for bi, (x, y) in enumerate(loader):
                    if (
                        cfg.max_batches_per_epoch is not None
                        and bi >= cfg.max_batches_per_epoch
                    ):
                        break
                    with _TRACE.span("trainer.forward", cat="trainer"):
                        logits = self.model(Tensor(x))
                    with _TRACE.span("trainer.loss", cat="trainer"):
                        loss = cross_entropy(logits, y)
                    loss_val = loss.item()
                    if not math.isfinite(loss_val):
                        # A NaN/inf loss used to propagate silently and
                        # poison the optimizer state; fail at the source
                        # with a structured, retryable error instead.
                        raise _HEALTH.nonfinite_loss(
                            epoch, bi, loss_val, last_finite_loss
                        )
                    last_finite_loss = loss_val
                    with _TRACE.span("trainer.backward", cat="trainer"):
                        self.optimizer.zero_grad()
                        loss.backward()
                    if _HEALTH.enabled:
                        _HEALTH.check_gradients(self.model, epoch, bi)
                    with _TRACE.span("trainer.step", cat="trainer"):
                        self.optimizer.step()
                    _TRACE.count("trainer.batches")
                    _TRACE.count("trainer.samples", len(y))
                    losses.append(loss_val)
                    correct += topk_correct(logits.data, y, 1)
                    total += len(y)
                    if cfg.log_every and (bi + 1) % cfg.log_every == 0:
                        print(
                            f"epoch {epoch + 1} batch {bi + 1}: "
                            f"loss {np.mean(losses):.4f}"
                        )
            if not losses:
                # np.mean([]) would record NaN (plus a RuntimeWarning) and
                # poison the history; fail loudly at the source instead.
                raise ConfigError(
                    f"epoch {epoch + 1} processed zero batches (empty "
                    "training data or max_batches_per_epoch="
                    f"{cfg.max_batches_per_epoch}); nothing to train on"
                )
            elapsed = time.perf_counter() - epoch_start
            throughput = total / elapsed if elapsed > 0 else 0.0
            history.train_loss.append(float(np.mean(losses)))
            history.train_top1.append(correct / max(total, 1))
            history.lr.append(lr)
            history.epoch_time.append(elapsed)
            history.samples_per_sec.append(throughput)
            if cfg.log_every:
                print(
                    f"epoch {epoch + 1}: loss {np.mean(losses):.4f}, "
                    f"{elapsed:.2f}s, {throughput:.1f} samples/s"
                )
            if eval_data is not None:
                top1, top5 = evaluate(self.model, eval_data)
                history.eval_top1.append(top1)
                history.eval_top5.append(top5)
            if _HEALTH.enabled:
                _HEALTH.flush_epoch(epoch)
            self.epochs_done = epoch + 1
            if on_epoch_end is not None:
                on_epoch_end(epoch, history)
        return history
