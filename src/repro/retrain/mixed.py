"""Per-layer mixed multiplier assignment (cross-layer extension).

The paper applies one AppMult to every convolutional layer, and cites
cross-layer optimization (Yu et al., TVLSI'24 [13]) as related work.  This
module provides that extension: assign a *different* multiplier to each
conv layer, plus a greedy sensitivity-based design-space exploration that
picks the cheapest per-layer multipliers meeting an accuracy drop budget.

The DSE follows the classic sensitivity recipe:

1. Measure each layer's isolated sensitivity: accuracy when only that layer
   uses the candidate AppMult (everything else exact).
2. Greedily approximate layers from least to most sensitive while the
   validation accuracy stays within ``accuracy_budget`` of the quantized
   reference.
3. Optionally retrain the mixed model with difference-based gradients.
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field

from repro.autograd.tensor import Tensor, no_grad
from repro.core.gradient import gradient_luts
from repro.data.dataset import DataLoader
from repro.errors import ConfigError
from repro.multipliers.base import Multiplier
from repro.multipliers.exact import ExactMultiplier
from repro.nn.approx import _ApproxBase
from repro.nn.module import Module
from repro.retrain.convert import approx_layers, approximate_model, calibrate, freeze
from repro.retrain.trainer import evaluate


def named_approx_layers(model: Module):
    """Yield ``(dotted_name, layer)`` for every approximate layer."""
    def walk(module: Module, prefix: str):
        for name, value in vars(module).items():
            if isinstance(value, _ApproxBase):
                yield f"{prefix}{name}", value
            elif isinstance(value, Module):
                yield from walk(value, f"{prefix}{name}.")
            elif isinstance(value, list):
                for i, item in enumerate(value):
                    if isinstance(item, _ApproxBase):
                        yield f"{prefix}{name}.{i}", item
                    elif isinstance(item, Module):
                        yield from walk(item, f"{prefix}{name}.{i}.")

    yield from walk(model, "")


def assign_multiplier(
    layer: _ApproxBase,
    multiplier: Multiplier,
    gradient_method="difference",
    hws: int | None = None,
) -> None:
    """Swap one approximate layer's multiplier (keeping its quantization).

    The layer must already be calibrated; only the LUT engine and gradient
    tables change, so forward scales stay valid (all Table I multipliers of
    one bitwidth share the operand range).
    """
    if layer.multiplier.bits != multiplier.bits:
        raise ConfigError(
            f"cannot swap a {layer.multiplier.bits}-bit layer to a "
            f"{multiplier.bits}-bit multiplier (quantization grid differs)"
        )
    pair = gradient_luts(multiplier, gradient_method, hws=hws)
    layer.multiplier = multiplier
    layer.set_gradients(pair)


def mixed_model(
    float_model: Module,
    assignment: dict[str, Multiplier],
    calib_loader,
    gradient_method="difference",
    default_bits: int | None = None,
) -> Module:
    """Build a calibrated model with per-layer multipliers.

    Args:
        float_model: Source float model.
        assignment: Dotted layer name -> multiplier.  Layers not listed get
            the exact multiplier of the same bitwidth.
        calib_loader: Loader for calibration batches.
        gradient_method: Gradient method for the assigned AppMults.
        default_bits: Bitwidth for unlisted layers; inferred from the
            assignment when omitted.

    Returns:
        Calibrated, frozen model ready for evaluation or retraining.
    """
    if not assignment and default_bits is None:
        raise ConfigError("empty assignment needs default_bits")
    bits = default_bits or next(iter(assignment.values())).bits
    if any(m.bits != bits for m in assignment.values()):
        raise ConfigError("all assigned multipliers must share one bitwidth")

    model = approximate_model(
        float_model, ExactMultiplier(bits), gradient_method="ste"
    )
    calibrate(model, calib_loader, batches=4)
    freeze(model)
    names = dict(named_approx_layers(model))
    for name, mult in assignment.items():
        if name not in names:
            raise ConfigError(
                f"unknown layer {name!r}; have: {sorted(names)}"
            )
        assign_multiplier(names[name], mult, gradient_method)
    return model


@dataclass
class LayerSensitivity:
    """Accuracy impact of approximating one layer in isolation."""

    layer: str
    accuracy: float
    drop: float


@dataclass
class MixedAssignmentResult:
    """Outcome of the greedy DSE."""

    assignment: dict[str, str]  # layer -> multiplier name (approximated set)
    accuracy: float
    reference_accuracy: float
    sensitivities: list[LayerSensitivity] = field(default_factory=list)
    approx_fraction: float = 0.0


def greedy_mixed_assignment(
    float_model: Module,
    multiplier: Multiplier,
    train_data,
    eval_data,
    accuracy_budget: float = 0.05,
    batch_size: int = 32,
    gradient_method="difference",
) -> MixedAssignmentResult:
    """Greedy sensitivity-ordered per-layer approximation.

    Approximates as many conv layers as possible with ``multiplier`` while
    keeping evaluation accuracy within ``accuracy_budget`` of the
    exact-multiplier quantized reference.
    """
    loader = DataLoader(train_data, batch_size=batch_size)
    base = mixed_model(
        float_model, {}, loader,
        gradient_method=gradient_method, default_bits=multiplier.bits,
    )
    ref_acc, _ = evaluate(base, eval_data)
    layer_names = [name for name, _ in named_approx_layers(base)]

    # Phase 1: isolated sensitivities.
    sensitivities: list[LayerSensitivity] = []
    for name in layer_names:
        model = copy.deepcopy(base)
        assign_multiplier(
            dict(named_approx_layers(model))[name], multiplier, gradient_method
        )
        acc, _ = evaluate(model, eval_data)
        sensitivities.append(LayerSensitivity(name, acc, ref_acc - acc))
    sensitivities.sort(key=lambda s: s.drop)

    # Phase 2: greedy accumulation from least sensitive.
    current = copy.deepcopy(base)
    chosen: dict[str, str] = {}
    current_acc = ref_acc
    for sens in sensitivities:
        trial = copy.deepcopy(current)
        assign_multiplier(
            dict(named_approx_layers(trial))[sens.layer],
            multiplier,
            gradient_method,
        )
        acc, _ = evaluate(trial, eval_data)
        if ref_acc - acc <= accuracy_budget:
            current, current_acc = trial, acc
            chosen[sens.layer] = multiplier.name

    return MixedAssignmentResult(
        assignment=chosen,
        accuracy=current_acc,
        reference_accuracy=ref_acc,
        sensitivities=sensitivities,
        approx_fraction=len(chosen) / max(len(layer_names), 1),
    )


def multiplication_counts(model: Module, input_shape: tuple[int, ...]) -> dict[str, int]:
    """Multiplications per approximate layer for one forward pass.

    Used to weight per-layer power estimates in mixed-assignment reports.
    """
    counts: dict[str, int] = {}
    x = Tensor(_zeros(input_shape))
    # Run a forward pass and infer counts from layer geometry.
    with no_grad():
        model.eval()
        _trace_counts(model, x, counts)
        model.train()
    return counts


def _zeros(shape):
    import numpy as np

    return np.zeros(shape, dtype=np.float64)


def _trace_counts(model: Module, x: Tensor, counts: dict[str, int]) -> None:
    """Fill ``counts`` by intercepting approximate layers during forward."""
    from repro.nn.approx import ApproxConv2d, ApproxLinear
    from repro.nn import functional as F

    originals = {}
    for name, layer in named_approx_layers(model):
        originals[name] = layer.forward

        def make_wrapper(lname, lyr, orig):
            def wrapped(inp):
                if isinstance(lyr, ApproxConv2d):
                    n, _c, h, w = inp.shape
                    oh, ow = F.conv_output_size(
                        h, w, lyr.kernel_size, lyr.kernel_size,
                        lyr.stride, lyr.padding,
                    )
                    k = lyr.in_channels * lyr.kernel_size**2
                    counts[lname] = n * lyr.out_channels * oh * ow * k
                elif isinstance(lyr, ApproxLinear):
                    counts[lname] = (
                        inp.shape[0] * lyr.out_features * lyr.in_features
                    )
                return orig(inp)

            return wrapped

        layer.forward = make_wrapper(name, layer, originals[name])
    try:
        model(x)
    finally:
        for name, layer in named_approx_layers(model):
            layer.forward = originals[name]
