"""Reusable process/run lifecycle primitives.

Extracted from the sweep runner (:mod:`repro.retrain.runner`) so the
sharded serving supervisor (:mod:`repro.serve.supervisor`) and any future
long-running executor share one implementation of:

- :func:`capped_backoff` -- the capped exponential retry/respawn delay
  every fault-tolerant loop in this repo uses
  (``base * 2**(attempt-1)``, capped at ``cap``).
- :class:`Heartbeat` -- a stoppable daemon thread that invokes a callback
  at a fixed interval (sweep in-flight heartbeats, serve worker liveness
  checks).  ``start`` is idempotent; ``stop`` joins the thread.
"""

from __future__ import annotations

import threading
from typing import Callable

__all__ = ["capped_backoff", "Heartbeat"]


def capped_backoff(attempt: int, base: float, cap: float) -> float:
    """Delay before retry/respawn number ``attempt`` (1-based), seconds.

    ``base * 2**(attempt-1)``, capped at ``cap``: the schedule the sweep
    runner has always used, now shared with worker respawn in
    :mod:`repro.serve.supervisor`.
    """
    return min(base * (2 ** (max(attempt, 1) - 1)), cap)


class Heartbeat:
    """Call ``fn()`` every ``interval_s`` seconds from a daemon thread.

    The callback runs until :meth:`stop`; exceptions from ``fn`` stop the
    loop (a broken heartbeat must be loud, not silently absent).  With
    ``interval_s <= 0`` the heartbeat is disabled and ``start``/``stop``
    are no-ops, so call sites don't need their own "is it on" branching.
    """

    def __init__(self, interval_s: float, fn: Callable[[], None],
                 name: str = "heartbeat"):
        self.interval_s = interval_s
        self.fn = fn
        self.name = name
        self._stop: threading.Event | None = None
        self._thread: threading.Thread | None = None

    @property
    def running(self) -> bool:
        return self._thread is not None and self._thread.is_alive()

    def start(self) -> "Heartbeat":
        if self.interval_s <= 0 or self.running:
            return self
        self._stop = threading.Event()
        self._thread = threading.Thread(
            target=self._loop, name=self.name, daemon=True
        )
        self._thread.start()
        return self

    def _loop(self) -> None:
        assert self._stop is not None
        while not self._stop.wait(self.interval_s):
            self.fn()

    def stop(self, timeout: float = 5.0) -> None:
        if self._thread is None:
            return
        assert self._stop is not None
        self._stop.set()
        self._thread.join(timeout)
        self._thread = None
