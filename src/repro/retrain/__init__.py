"""AppMult-aware DNN retraining framework (Fig. 4 of the paper).

- :mod:`repro.retrain.convert` -- swap conv layers for LUT-backed
  approximate layers, calibrate and freeze quantization.
- :mod:`repro.retrain.trainer` -- training/eval loops with the paper's
  schedule (Adam, stepped lr).
- :mod:`repro.retrain.experiment` -- full STE-vs-difference comparison
  pipelines (the Table II / Fig. 5 / Fig. 6 workloads).
- :mod:`repro.retrain.runner` -- fault-tolerant parallel sweep execution
  (crash-safe resume, retries with backoff, worker pools).
"""

from repro.retrain.convert import (
    approximate_model,
    calibrate,
    freeze,
    approx_layers,
    set_gradient_method,
)
from repro.retrain.trainer import Trainer, TrainConfig, TrainHistory, evaluate
from repro.retrain.experiment import (
    ExperimentScale,
    RetrainOutcome,
    ComparisonRow,
    retrain_comparison,
    run_cell,
    pretrain_float_model,
    quantized_reference_accuracy,
)
from repro.retrain.checkpoint import (
    save_checkpoint,
    load_checkpoint,
    save_training_state,
    load_training_state,
)
from repro.retrain.sweep import SweepConfig, SweepSummary, run_sweep
from repro.retrain.runner import (
    RunSpec,
    RunStatus,
    RunEvent,
    SweepResult,
    SweepRunner,
    execute_cell,
)
from repro.retrain.mixed import (
    mixed_model,
    greedy_mixed_assignment,
    named_approx_layers,
)

__all__ = [
    "approximate_model",
    "calibrate",
    "freeze",
    "approx_layers",
    "set_gradient_method",
    "Trainer",
    "TrainConfig",
    "TrainHistory",
    "evaluate",
    "ExperimentScale",
    "RetrainOutcome",
    "ComparisonRow",
    "retrain_comparison",
    "run_cell",
    "pretrain_float_model",
    "quantized_reference_accuracy",
    "save_checkpoint",
    "load_checkpoint",
    "save_training_state",
    "load_training_state",
    "SweepConfig",
    "SweepSummary",
    "run_sweep",
    "RunSpec",
    "RunStatus",
    "RunEvent",
    "SweepResult",
    "SweepRunner",
    "execute_cell",
    "mixed_model",
    "greedy_mixed_assignment",
    "named_approx_layers",
]
