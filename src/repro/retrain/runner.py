"""Fault-tolerant parallel sweep execution (the ``repro sweep`` engine).

Replaces the bare loop that used to live in :mod:`repro.retrain.sweep`:
every (multiplier, method, seed) grid cell becomes an independent
:class:`RunSpec` with a deterministic ``run_id``, executed either
in-process (``workers=1``, the default -- preserves the historical JSONL
log ordering bit-for-bit) or across a ``fork``-based process pool
(``REPRO_SWEEP_WORKERS`` / ``workers > 1``).

Fault tolerance has three layers:

- **Crash-safe resume.** Completed cells are journaled to the sweep's
  JSONL log from the *parent* process the moment they finish; a restarted
  sweep reloads the log (tolerating a truncated final line from a killed
  append, deduping by ``run_id``) and skips every cell already recorded,
  so no work is repeated and no duplicate records are written.
- **Retries.** A cell that raises :class:`repro.errors.TransientRunError`
  (non-finite losses, injected engine faults) is retried with capped
  exponential backoff (``backoff_base * 2**(attempt-1)``, capped at
  ``backoff_cap``) up to ``max_retries`` times; every attempt is counted
  in the cell's :class:`RunStatus`.
- **Degradation.** If the process pool itself fails (sandboxed
  environments that forbid fork, broken workers), the remaining cells run
  sequentially in-process instead of failing the sweep.

Observability: lifecycle events (``started`` / ``heartbeat`` /
``retried`` / ``finished`` / ``failed`` / ``skipped``) flow through an
``on_event`` callback, and counters / latency histograms / an in-flight
gauge report through :class:`repro.serve.metrics.ServeMetrics` -- the same
metrics surface the serving stack uses -- including live engine cache
statistics from :func:`repro.core.lutgemm.engine_cache_stats`.
"""

from __future__ import annotations

import math
import os
import threading
import time
import warnings
from collections import deque
from dataclasses import dataclass, field, replace
from pathlib import Path
from typing import Callable

from repro.errors import TransientRunError
from repro.obs.trace import get_tracer
from repro.retrain.experiment import ExperimentScale, run_cell
from repro.retrain.lifecycle import Heartbeat, capped_backoff
from repro.retrain.logging import RunRecord, append_jsonl, read_jsonl
from repro.retrain.sweep import SweepConfig, SweepSummary
from repro.retrain.trainer import TrainHistory

_TRACE = get_tracer()

#: Environment variable read when ``workers`` is not passed explicitly.
WORKERS_ENV = "REPRO_SWEEP_WORKERS"


def workers_requested() -> int:
    """Worker-pool size from ``REPRO_SWEEP_WORKERS`` (default / invalid: 1)."""
    raw = os.environ.get(WORKERS_ENV, "")
    try:
        return max(int(raw), 1)
    except ValueError:
        return 1


# ----------------------------------------------------------------------
# Run specs and per-run records.
@dataclass(frozen=True)
class RunSpec:
    """One independent grid cell: a single (arch, multiplier, method, seed)
    retraining run at a given scale."""

    arch: str
    multiplier: str
    method: str
    seed: int
    scale: ExperimentScale = field(default_factory=ExperimentScale)

    @property
    def run_id(self) -> str:
        """Deterministic identifier; doubles as the JSONL journal key."""
        return f"{self.arch}-{self.multiplier}-{self.method}-s{self.seed}"


@dataclass
class CellResult:
    """What one executed cell returns to the parent process."""

    run_id: str
    final_top1: float
    final_top5: float
    initial_top1: float
    train_loss: list[float] = field(default_factory=list)
    epoch_top1: list[float] = field(default_factory=list)
    epoch_top5: list[float] = field(default_factory=list)
    wall_time_s: float = 0.0
    samples_per_sec: float = 0.0
    engine_cache: dict = field(default_factory=dict)
    # Per-epoch health summaries from the anomaly monitor (empty unless
    # telemetry was enabled in the executing process).
    health: dict = field(default_factory=dict)
    pid: int = 0


@dataclass
class RunStatus:
    """Parent-side lifecycle record for one cell."""

    run_id: str
    state: str = "pending"  # pending|running|completed|failed|resumed
    attempts: int = 0
    retries: int = 0
    wall_time_s: float = 0.0
    samples_per_sec: float = 0.0
    error: str | None = None
    final_top1: float | None = None
    final_top5: float | None = None


@dataclass
class RunEvent:
    """One entry of the run-level event stream (``on_event`` callback)."""

    kind: str  # started|heartbeat|retried|finished|failed|skipped
    run_id: str
    attempt: int = 1
    elapsed_s: float = 0.0
    error: str | None = None
    samples_per_sec: float | None = None
    engine_cache: dict | None = None


@dataclass
class SweepResult:
    """Everything :meth:`SweepRunner.run` produces."""

    summary: SweepSummary
    statuses: dict[str, RunStatus]
    failed: list[RunStatus] = field(default_factory=list)


# ----------------------------------------------------------------------
# Cell execution.  Top-level functions so they pickle under fork/spawn.
def execute_cell(spec: RunSpec) -> CellResult:
    """Execute one grid cell (the default ``cell_fn``).

    Runs :func:`repro.retrain.experiment.run_cell` with the spec's seed
    substituted into its scale (every randomness source keys off
    ``scale.seed``, which is what makes per-seed cells independent).
    Non-finite results raise :class:`TransientRunError` so the parent
    retries instead of journaling garbage.
    """
    from repro.core.lutgemm import engine_cache_stats
    from repro.obs.health import get_monitor

    monitor = get_monitor()
    if monitor.enabled:
        # One health summary per cell, not per process lifetime.
        monitor.reset()
    scale = replace(spec.scale, seed=spec.seed)
    t0 = time.monotonic()
    row = run_cell(spec.arch, spec.multiplier, spec.method, scale)
    wall = time.monotonic() - t0
    outcome = row.outcomes[spec.method]
    checked = [outcome.final_top1, outcome.final_top5, *outcome.train_loss]
    if not all(math.isfinite(v) for v in checked):
        raise TransientRunError(f"non-finite training result in {spec.run_id}")
    health = monitor.run_summary() if monitor.enabled else {}
    return CellResult(
        run_id=spec.run_id,
        final_top1=outcome.final_top1,
        final_top5=outcome.final_top5,
        initial_top1=row.initial_top1,
        train_loss=outcome.train_loss,
        epoch_top1=outcome.epoch_top1,
        epoch_top5=outcome.epoch_top5,
        wall_time_s=wall,
        samples_per_sec=outcome.samples_per_sec,
        engine_cache=engine_cache_stats().as_dict(),
        health=health,
        pid=os.getpid(),
    )


def _pool_call(fn: Callable[[RunSpec], CellResult], spec: RunSpec) -> CellResult:
    """Worker-side shim (keeps custom ``cell_fn``s picklable as args)."""
    return fn(spec)


# ----------------------------------------------------------------------
class SweepRunner:
    """Fault-tolerant executor for one :class:`SweepConfig` grid.

    Args:
        config: The grid (arch, multipliers, methods, seeds, scale, log).
        workers: Pool size; ``None`` reads ``REPRO_SWEEP_WORKERS``
            (default 1 = sequential, historical log order).
        resume: Skip cells already journaled in ``config.log_path``.
        max_retries: Retries per cell after a :class:`TransientRunError`
            (so a cell executes at most ``max_retries + 1`` times).
        backoff_base / backoff_cap: Exponential retry backoff, seconds.
        heartbeat_s: Interval of ``heartbeat`` events for in-flight runs
            (0 disables the heartbeat thread).
        metrics: Optional :class:`repro.serve.metrics.ServeMetrics`.
        on_event: Optional :class:`RunEvent` callback (called under a lock,
            possibly from the heartbeat thread).
        cell_fn: Cell executor override (tests / custom workloads); must
            be a picklable top-level callable when ``workers > 1``.
        sleep: Injectable sleep (tests).
    """

    def __init__(
        self,
        config: SweepConfig,
        *,
        workers: int | None = None,
        resume: bool = True,
        max_retries: int = 2,
        backoff_base: float = 0.5,
        backoff_cap: float = 30.0,
        heartbeat_s: float = 5.0,
        metrics=None,
        on_event: Callable[[RunEvent], None] | None = None,
        cell_fn: Callable[[RunSpec], CellResult] | None = None,
        sleep: Callable[[float], None] = time.sleep,
    ):
        self.config = config
        self.workers = max(workers if workers is not None else workers_requested(), 1)
        self.resume = resume
        self.max_retries = max(max_retries, 0)
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.heartbeat_s = heartbeat_s
        self.metrics = metrics
        self.on_event = on_event
        self._cell_fn = cell_fn or execute_cell
        self._sleep = sleep
        self._lock = threading.Lock()
        self._inflight: dict[str, tuple[float, int]] = {}

    # ------------------------------------------------------------------
    def specs(self) -> list[RunSpec]:
        """Grid cells in canonical order (seed-major, then multiplier,
        then method) -- the order the historical sequential sweep wrote
        its JSONL log in."""
        cfg = self.config
        return [
            RunSpec(cfg.arch, mult, method, seed, cfg.scale)
            for seed in cfg.seeds
            for mult in cfg.multipliers
            for method in cfg.methods
        ]

    def run(self) -> SweepResult:
        specs = self.specs()
        statuses = {s.run_id: RunStatus(run_id=s.run_id) for s in specs}
        if self.metrics is not None:
            self.metrics.inc("sweep_cells_total", len(specs))
            self.metrics.register_gauge(
                "sweep_inflight", lambda: float(len(self._inflight))
            )

        pending: list[RunSpec] = []
        completed = self._load_completed({s.run_id for s in specs})
        for spec in specs:
            record = completed.get(spec.run_id)
            if record is None:
                pending.append(spec)
                continue
            self._mark_resumed(statuses[spec.run_id], record)

        hb = self._start_heartbeat()
        try:
            if self.workers <= 1:
                self._run_sequential(pending, statuses)
            else:
                self._run_pool(pending, statuses)
        finally:
            self._stop_heartbeat(hb)

        results: dict[tuple[str, str], list[float]] = {
            (m, meth): []
            for m in self.config.multipliers
            for meth in self.config.methods
        }
        for spec in specs:
            st = statuses[spec.run_id]
            if st.state in ("completed", "resumed") and st.final_top1 is not None:
                results[(spec.multiplier, spec.method)].append(st.final_top1)
        failed = [
            statuses[s.run_id] for s in specs if statuses[s.run_id].state == "failed"
        ]
        return SweepResult(
            summary=SweepSummary(final_top1=results),
            statuses=statuses,
            failed=failed,
        )

    # ------------------------------------------------------------------
    # Resume.
    def _load_completed(self, valid_ids: set[str]) -> dict[str, RunRecord]:
        path = self.config.log_path
        if not self.resume or not path or not Path(path).exists():
            return {}
        records = read_jsonl(path, dedupe=True)
        return {r.run_id: r for r in records if r.run_id in valid_ids}

    def _mark_resumed(self, status: RunStatus, record: RunRecord) -> None:
        status.state = "resumed"
        extra = record.extra or {}
        if record.history.eval_top1:
            status.final_top1 = record.history.eval_top1[-1]
        elif "final_top1" in extra:
            status.final_top1 = extra["final_top1"]
        if record.history.eval_top5:
            status.final_top5 = record.history.eval_top5[-1]
        elif "final_top5" in extra:
            status.final_top5 = extra["final_top5"]
        status.attempts = extra.get("attempts", status.attempts)
        status.retries = extra.get("retries", status.retries)
        status.wall_time_s = extra.get("wall_time_s", status.wall_time_s)
        status.samples_per_sec = extra.get(
            "samples_per_sec", status.samples_per_sec
        )
        _TRACE.count("sweep.cells_resumed")
        if self.metrics is not None:
            self.metrics.inc("sweep_cells_resumed")
        self._emit(RunEvent(kind="skipped", run_id=status.run_id))

    # ------------------------------------------------------------------
    # Sequential path (workers == 1): canonical order, bit-identical to
    # the historical loop.
    def _run_sequential(
        self, pending: list[RunSpec], statuses: dict[str, RunStatus]
    ) -> None:
        for spec in pending:
            status = statuses[spec.run_id]
            attempt = 0
            while True:
                attempt += 1
                self._begin(spec, status, attempt)
                t0 = time.monotonic()
                try:
                    result = self._cell_fn(spec)
                except TransientRunError as exc:
                    elapsed = time.monotonic() - t0
                    self._end(spec)
                    if attempt > self.max_retries:
                        self._fail(status, exc, elapsed, attempt)
                        break
                    self._retry(status, exc, elapsed, attempt)
                    self._sleep(self._backoff(attempt))
                    continue
                except Exception as exc:  # permanent: config errors etc.
                    elapsed = time.monotonic() - t0
                    self._end(spec)
                    self._fail(status, exc, elapsed, attempt)
                    break
                elapsed = time.monotonic() - t0
                self._end(spec)
                self._complete(spec, status, result, elapsed)
                break

    # ------------------------------------------------------------------
    # Parallel path (workers > 1): fork-based process pool with an event
    # loop that interleaves completions and due retries.  Pool-level
    # failures degrade to the sequential path for whatever is left.
    def _run_pool(
        self, pending: list[RunSpec], statuses: dict[str, RunStatus]
    ) -> None:
        try:
            self._pool_loop(pending, statuses)
        except Exception as exc:
            leftovers = [
                spec
                for spec in pending
                if statuses[spec.run_id].state not in ("completed", "failed")
            ]
            with self._lock:
                self._inflight.clear()
            if not leftovers:
                return
            warnings.warn(
                f"sweep worker pool failed ({exc!r}); running "
                f"{len(leftovers)} remaining cell(s) sequentially",
                RuntimeWarning,
                stacklevel=2,
            )
            self._run_sequential(leftovers, statuses)

    def _pool_loop(
        self, pending: list[RunSpec], statuses: dict[str, RunStatus]
    ) -> None:
        import multiprocessing as mp
        from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor
        from concurrent.futures import wait as futures_wait

        ctx = (
            mp.get_context("fork")
            if "fork" in mp.get_all_start_methods()
            else None
        )
        queue: deque[tuple[RunSpec, int]] = deque((s, 1) for s in pending)
        retry_at: list[tuple[float, RunSpec, int]] = []
        running: dict = {}  # future -> (spec, attempt, t0)
        with ProcessPoolExecutor(max_workers=self.workers, mp_context=ctx) as pool:
            while queue or retry_at or running:
                now = time.monotonic()
                due = [item for item in retry_at if item[0] <= now]
                retry_at = [item for item in retry_at if item[0] > now]
                for _, spec, attempt in due:
                    queue.append((spec, attempt))

                while queue and len(running) < self.workers:
                    spec, attempt = queue.popleft()
                    self._begin(spec, statuses[spec.run_id], attempt)
                    fut = pool.submit(_pool_call, self._cell_fn, spec)
                    running[fut] = (spec, attempt, time.monotonic())

                if not running:
                    next_due = min(item[0] for item in retry_at)
                    self._sleep(max(next_due - time.monotonic(), 0.0))
                    continue

                timeout = None
                if retry_at:
                    next_due = min(item[0] for item in retry_at)
                    timeout = max(next_due - time.monotonic(), 0.0)
                done, _ = futures_wait(
                    set(running), timeout=timeout, return_when=FIRST_COMPLETED
                )
                for fut in done:
                    spec, attempt, t0 = running.pop(fut)
                    status = statuses[spec.run_id]
                    elapsed = time.monotonic() - t0
                    self._end(spec)
                    try:
                        result = fut.result()
                    except TransientRunError as exc:
                        if attempt > self.max_retries:
                            self._fail(status, exc, elapsed, attempt)
                        else:
                            self._retry(status, exc, elapsed, attempt)
                            retry_at.append(
                                (
                                    time.monotonic() + self._backoff(attempt),
                                    spec,
                                    attempt + 1,
                                )
                            )
                        continue
                    except Exception as exc:
                        self._fail(status, exc, elapsed, attempt)
                        continue
                    self._complete(spec, status, result, elapsed)

    # ------------------------------------------------------------------
    # Lifecycle bookkeeping shared by both paths.
    def _backoff(self, attempt: int) -> float:
        return capped_backoff(attempt, self.backoff_base, self.backoff_cap)

    def _begin(self, spec: RunSpec, status: RunStatus, attempt: int) -> None:
        status.state = "running"
        status.attempts = attempt
        with self._lock:
            self._inflight[spec.run_id] = (time.monotonic(), attempt)
        self._emit(RunEvent(kind="started", run_id=spec.run_id, attempt=attempt))

    def _end(self, spec: RunSpec) -> None:
        with self._lock:
            self._inflight.pop(spec.run_id, None)

    def _retry(
        self, status: RunStatus, exc: Exception, elapsed: float, attempt: int
    ) -> None:
        status.retries += 1
        status.error = str(exc)
        _TRACE.count("sweep.retries")
        if self.metrics is not None:
            self.metrics.inc("sweep_retries_total")
        self._emit(
            RunEvent(
                kind="retried",
                run_id=status.run_id,
                attempt=attempt,
                elapsed_s=elapsed,
                error=str(exc),
            )
        )

    def _fail(
        self, status: RunStatus, exc: Exception, elapsed: float, attempt: int
    ) -> None:
        status.state = "failed"
        status.error = str(exc)
        status.wall_time_s += elapsed
        _TRACE.count("sweep.cells_failed")
        _TRACE.record("sweep.cell", elapsed, cat="sweep",
                      args={"run_id": status.run_id, "outcome": "failed"})
        if self.metrics is not None:
            self.metrics.inc("sweep_cells_failed")
        self._emit(
            RunEvent(
                kind="failed",
                run_id=status.run_id,
                attempt=attempt,
                elapsed_s=elapsed,
                error=str(exc),
            )
        )

    def _complete(
        self,
        spec: RunSpec,
        status: RunStatus,
        result: CellResult,
        elapsed: float,
    ) -> None:
        status.state = "completed"
        status.final_top1 = result.final_top1
        status.final_top5 = result.final_top5
        status.wall_time_s = result.wall_time_s or elapsed
        status.samples_per_sec = result.samples_per_sec
        _TRACE.count("sweep.cells_completed")
        # Pool cells ran in a child process, so the parent records the
        # observed wall time as an after-the-fact span.
        _TRACE.record("sweep.cell", elapsed, cat="sweep",
                      args={"run_id": spec.run_id,
                            "attempt": status.attempts,
                            "outcome": "completed"})
        if self.metrics is not None:
            self.metrics.inc("sweep_cells_completed")
            self.metrics.observe_latency(
                "sweep_cell_wall_ms", status.wall_time_s * 1000.0
            )
        self._journal(spec, status, result)
        self._emit(
            RunEvent(
                kind="finished",
                run_id=spec.run_id,
                attempt=status.attempts,
                elapsed_s=status.wall_time_s,
                samples_per_sec=result.samples_per_sec,
                engine_cache=result.engine_cache or None,
            )
        )

    def _journal(
        self, spec: RunSpec, status: RunStatus, result: CellResult
    ) -> None:
        """Append the completed cell to the JSONL log (parent-side, so a
        record only ever exists for a fully-finished run)."""
        if not self.config.log_path:
            return
        record = RunRecord(
            run_id=spec.run_id,
            arch=spec.arch,
            multiplier=spec.multiplier,
            method=spec.method,
            seed=spec.seed,
            extra={
                "initial_top1": result.initial_top1,
                "final_top1": result.final_top1,
                "final_top5": result.final_top5,
                "attempts": status.attempts,
                "retries": status.retries,
                "wall_time_s": status.wall_time_s,
                "samples_per_sec": result.samples_per_sec,
                "status": status.state,
            },
            history=TrainHistory(
                train_loss=result.train_loss,
                eval_top1=result.epoch_top1 or [result.final_top1],
                eval_top5=result.epoch_top5 or [result.final_top5],
            ),
            health=result.health,
        )
        append_jsonl(record, Path(self.config.log_path))

    # ------------------------------------------------------------------
    # Event stream + heartbeat.
    def _emit(self, event: RunEvent) -> None:
        if self.on_event is None:
            return
        with self._lock:
            self.on_event(event)

    def _start_heartbeat(self) -> Heartbeat | None:
        if self.on_event is None and self.metrics is None:
            return None
        return Heartbeat(
            self.heartbeat_s, self._heartbeat_tick, name="sweep-heartbeat"
        ).start()

    def _stop_heartbeat(self, heartbeat: Heartbeat | None) -> None:
        if heartbeat is not None:
            heartbeat.stop()

    def _heartbeat_tick(self) -> None:
        with self._lock:
            snapshot = list(self._inflight.items())
        for run_id, (t0, attempt) in snapshot:
            if self.metrics is not None:
                self.metrics.inc("sweep_heartbeats_total")
            self._emit(
                RunEvent(
                    kind="heartbeat",
                    run_id=run_id,
                    attempt=attempt,
                    elapsed_s=time.monotonic() - t0,
                )
            )
