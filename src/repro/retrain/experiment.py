"""Experiment pipelines: the paper's Table II / Fig. 5 / Fig. 6 workloads.

The full flow per the paper's Fig. 1:

1. pretrain a float model,
2. quantization-aware training with the B-bit *accurate* multiplier
   (the "reference accuracy" rows of Table II),
3. swap in an AppMult -> measure the collapsed "initial accuracy",
4. AppMult-aware retraining, once with STE gradients and once with the
   difference-based gradients, from the same starting point,
5. record final accuracies + the multiplier's normalized hardware cost.

Everything is parameterized by :class:`ExperimentScale` so benchmarks can
shrink models/datasets to CPU scale while preserving the comparisons.
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.data.dataset import DataLoader
from repro.data.synthetic import SyntheticImageDataset
from repro.errors import ConfigError
from repro.models.lenet import LeNet
from repro.models.resnet import resnet18, resnet34, resnet50
from repro.models.vgg import VGG
from repro.multipliers.exact import ExactMultiplier
from repro.multipliers.registry import get_multiplier, multiplier_info
from repro.retrain.convert import approximate_model, calibrate, freeze
from repro.retrain.trainer import TrainConfig, Trainer, evaluate


@dataclass(frozen=True)
class ExperimentScale:
    """Scale knobs for one experiment family.

    The defaults are the CPU-friendly benchmark scale; the paper's scale
    would be ``image_size=32, n_train=50000, width_mult=1.0,
    retrain_epochs=30``.
    """

    image_size: int = 16
    n_train: int = 768
    n_test: int = 256
    n_classes: int = 10
    width_mult: float = 0.125
    pretrain_epochs: int = 8
    qat_epochs: int = 2
    retrain_epochs: int = 3
    batch_size: int = 32
    seed: int = 0
    augment: bool = False
    chunk: int = 1024
    # Scaled-down models train best a bit hotter than the paper's 1e-3;
    # retraining keeps the paper's schedule base.
    pretrain_lr: float = 3e-3
    retrain_lr: float = 1e-3


def load_data(scale: ExperimentScale) -> tuple[SyntheticImageDataset, SyntheticImageDataset]:
    """Train/test synthetic datasets for a scale."""
    train = SyntheticImageDataset(
        scale.n_train, scale.n_classes, scale.image_size,
        seed=scale.seed, split="train",
    )
    test = SyntheticImageDataset(
        scale.n_test, scale.n_classes, scale.image_size,
        seed=scale.seed, split="test",
    )
    return train, test


def build_model(arch: str, scale: ExperimentScale):
    """Instantiate an architecture at the experiment scale."""
    common = dict(
        num_classes=scale.n_classes,
        image_size=scale.image_size,
        seed=scale.seed,
    )
    if arch == "lenet":
        return LeNet(**common)
    if arch == "vgg19":
        # Small images support fewer pool stages; keep VGG19's stage pattern.
        max_stages = max(2, scale.image_size.bit_length() - 2)
        return VGG(
            "VGG19", width_mult=scale.width_mult, max_stages=max_stages, **common
        )
    if arch == "resnet18":
        return resnet18(
            num_classes=scale.n_classes, width_mult=scale.width_mult, seed=scale.seed
        )
    if arch == "resnet34":
        return resnet34(
            num_classes=scale.n_classes, width_mult=scale.width_mult, seed=scale.seed
        )
    if arch == "resnet50":
        return resnet50(
            num_classes=scale.n_classes, width_mult=scale.width_mult, seed=scale.seed
        )
    raise ConfigError(f"unknown architecture {arch!r}")


@dataclass
class RetrainOutcome:
    """One retraining run's result."""

    method: str
    final_top1: float
    final_top5: float
    epoch_top1: list[float] = field(default_factory=list)
    epoch_top5: list[float] = field(default_factory=list)
    train_loss: list[float] = field(default_factory=list)
    samples_per_sec: float = 0.0


@dataclass
class ComparisonRow:
    """One Table II row: a multiplier under every gradient method."""

    multiplier: str
    bits: int
    initial_top1: float
    outcomes: dict[str, RetrainOutcome]
    reference_top1: float
    norm_power: float
    norm_delay: float
    nmed_percent: float

    @property
    def improvement(self) -> float:
        """Ours minus STE final top-1 (percentage points / 100)."""
        if "difference" in self.outcomes and "ste" in self.outcomes:
            return (
                self.outcomes["difference"].final_top1
                - self.outcomes["ste"].final_top1
            )
        return 0.0


def pretrain_float_model(arch: str, scale: ExperimentScale, train, test):
    """Step 1 of Fig. 1: train the float model. Returns (model, top1)."""
    model = build_model(arch, scale)
    trainer = Trainer(
        model,
        TrainConfig(
            epochs=scale.pretrain_epochs,
            batch_size=scale.batch_size,
            base_lr=scale.pretrain_lr,
            augment=scale.augment,
            seed=scale.seed,
        ),
    )
    trainer.fit(train)
    top1, _ = evaluate(model, test)
    return model, top1


def _calibrated_approx_model(float_model, multiplier, scale, train, **kwargs):
    model = approximate_model(float_model, multiplier, chunk=scale.chunk, **kwargs)
    loader = DataLoader(train, batch_size=scale.batch_size, seed=scale.seed)
    calibrate(model, loader, batches=4)
    freeze(model)
    return model


def quantized_reference_accuracy(
    float_model, bits: int, scale: ExperimentScale, train, test
):
    """Step 2 of Fig. 1: QAT with the B-bit AccMult.

    Returns ``(qat_model, reference_top1)``.  The QAT model's (float)
    weights seed every AppMult retraining at the same bitwidth.
    """
    acc_mult = ExactMultiplier(bits)
    model = _calibrated_approx_model(
        float_model, acc_mult, scale, train, gradient_method="ste"
    )
    trainer = Trainer(
        model,
        TrainConfig(
            epochs=scale.qat_epochs,
            batch_size=scale.batch_size,
            base_lr=scale.retrain_lr,
            augment=scale.augment,
            seed=scale.seed,
        ),
    )
    trainer.fit(train)
    top1, _ = evaluate(model, test)
    return model, top1


def _float_weights_from(qat_model, float_model):
    """Copy the QAT-tuned float weights back onto a float-model skeleton."""
    import copy

    model = copy.deepcopy(float_model)
    src = dict(qat_model.named_parameters())
    for name, p in model.named_parameters():
        p.data = src[name].data.copy()
    for (name, buf), (_, src_buf) in zip(
        model.named_buffers(), qat_model.named_buffers()
    ):
        buf[...] = src_buf
    return model


# ----------------------------------------------------------------------
# Process-level cache of the deterministic shared stages (pretrain, QAT).
#
# Steps 1-2 of Fig. 1 depend only on ``(arch, scale)`` / ``(arch, scale,
# bits)`` -- every randomness source is seeded by ``scale.seed`` -- so grid
# cells executed one at a time (the sweep runner's unit of work) reuse the
# trained float model and the per-bitwidth QAT seed weights instead of
# re-running them per cell.  Cached models are treated as immutable:
# every consumer deep-copies before training (``approximate_model``,
# ``_float_weights_from``).
_STAGE_CACHE: dict[tuple, tuple] = {}


def clear_stage_cache() -> None:
    """Drop cached pretrain/QAT stages (frees the retained models)."""
    _STAGE_CACHE.clear()


def _float_stage(arch: str, scale: ExperimentScale, train, test):
    """Cached step 1: ``(float_model, float_top1)`` for ``(arch, scale)``."""
    key = ("float", arch, scale)
    hit = _STAGE_CACHE.get(key)
    if hit is None:
        hit = _STAGE_CACHE[key] = pretrain_float_model(arch, scale, train, test)
    return hit


def _seed_stage(arch: str, scale: ExperimentScale, bits: int, train, test):
    """Cached step 2: ``(seed_model, reference_top1)`` for a bitwidth."""
    key = ("seed", arch, scale, bits)
    hit = _STAGE_CACHE.get(key)
    if hit is None:
        float_model, _ = _float_stage(arch, scale, train, test)
        qat_model, ref_top1 = quantized_reference_accuracy(
            float_model, bits, scale, train, test
        )
        seed_model = _float_weights_from(qat_model, float_model)
        hit = _STAGE_CACHE[key] = (seed_model, ref_top1)
    return hit


def _retrain_outcome(
    seed_model,
    mult,
    method: str,
    scale: ExperimentScale,
    train,
    test,
    hws: int | None,
    track_epochs: bool,
) -> RetrainOutcome:
    """Steps 3-5 of Fig. 1 for one (multiplier, method) cell."""
    model = _calibrated_approx_model(
        seed_model,
        mult,
        scale,
        train,
        gradient_method=method,
        hws=hws if method == "difference" else None,
    )
    trainer = Trainer(
        model,
        TrainConfig(
            epochs=scale.retrain_epochs,
            batch_size=scale.batch_size,
            base_lr=scale.retrain_lr,
            augment=scale.augment,
            seed=scale.seed,
        ),
    )
    history = trainer.fit(train, eval_data=test if track_epochs else None)
    top1, top5 = evaluate(model, test)
    throughput = (
        sum(history.samples_per_sec) / len(history.samples_per_sec)
        if history.samples_per_sec
        else 0.0
    )
    return RetrainOutcome(
        method=method,
        final_top1=top1,
        final_top5=top5,
        epoch_top1=history.eval_top1,
        epoch_top5=history.eval_top5,
        train_loss=history.train_loss,
        samples_per_sec=throughput,
    )


def run_cell(
    arch: str,
    multiplier_name: str,
    method: str,
    scale: ExperimentScale,
    hws: int | None = None,
    track_epochs: bool = False,
) -> ComparisonRow:
    """Run one independent (multiplier, method) grid cell.

    The sweep runner's unit of work: produces exactly the values
    :func:`retrain_comparison` would for this cell (shared pretrain/QAT
    stages are deterministic and cached per process), but each call is
    self-contained, so cells can execute in any order and in parallel
    worker processes.

    Returns a :class:`ComparisonRow` whose ``outcomes`` holds just
    ``method``.
    """
    train, test = load_data(scale)
    info = multiplier_info(multiplier_name)
    seed_model, ref_top1 = _seed_stage(arch, scale, info.bits, train, test)
    mult = get_multiplier(multiplier_name)

    base = _calibrated_approx_model(
        seed_model, mult, scale, train, gradient_method="ste"
    )
    initial_top1, _ = evaluate(base, test)
    outcome = _retrain_outcome(
        seed_model, mult, method, scale, train, test, hws, track_epochs
    )

    sheet = info.datasheet
    ref_power = multiplier_info("mul8u_acc").datasheet.power_uw
    ref_delay = multiplier_info("mul8u_acc").datasheet.delay_ps
    return ComparisonRow(
        multiplier=multiplier_name,
        bits=info.bits,
        initial_top1=initial_top1,
        outcomes={method: outcome},
        reference_top1=ref_top1,
        norm_power=sheet.power_uw / ref_power,
        norm_delay=sheet.delay_ps / ref_delay,
        nmed_percent=sheet.nmed_percent,
    )


def retrain_comparison(
    arch: str,
    multiplier_names: list[str],
    scale: ExperimentScale,
    methods: tuple[str, ...] = ("ste", "difference"),
    hws: int | None = None,
    track_epochs: bool = False,
) -> tuple[list[ComparisonRow], dict[int, float]]:
    """Run the full STE-vs-ours comparison for one architecture.

    Args:
        arch: Architecture name understood by :func:`build_model`.
        multiplier_names: Registry names (a Table II column block).
        scale: Experiment scale.
        methods: Gradient methods to retrain with.
        hws: Optional HWS override (default: Table I per-name values).
        track_epochs: Record per-epoch eval accuracy (needed by Fig. 6).

    Returns:
        ``(rows, reference_acc_by_bits)``.
    """
    train, test = load_data(scale)

    bit_widths = sorted({multiplier_info(n).bits for n in multiplier_names})
    references: dict[int, float] = {}
    seeds: dict[int, object] = {}
    for bits in bit_widths:
        seeds[bits], references[bits] = _seed_stage(
            arch, scale, bits, train, test
        )

    ref_power = multiplier_info("mul8u_acc").datasheet.power_uw
    ref_delay = multiplier_info("mul8u_acc").datasheet.delay_ps

    rows: list[ComparisonRow] = []
    for name in multiplier_names:
        info = multiplier_info(name)
        mult = get_multiplier(name)
        seed_model = seeds[info.bits]
        base = _calibrated_approx_model(
            seed_model, mult, scale, train, gradient_method="ste"
        )
        initial_top1, _ = evaluate(base, test)

        outcomes: dict[str, RetrainOutcome] = {}
        for method in methods:
            outcomes[method] = _retrain_outcome(
                seed_model, mult, method, scale, train, test, hws, track_epochs
            )

        sheet = info.datasheet
        rows.append(
            ComparisonRow(
                multiplier=name,
                bits=info.bits,
                initial_top1=initial_top1,
                outcomes=outcomes,
                reference_top1=references[info.bits],
                norm_power=sheet.power_uw / ref_power,
                norm_delay=sheet.delay_ps / ref_delay,
                nmed_percent=sheet.nmed_percent,
            )
        )
    return rows, references
