"""Command-line interface.

Three subcommands mirror the main workflows::

    python -m repro.cli characterize [names...]     # Table I rows
    python -m repro.cli retrain --multiplier NAME   # one STE-vs-ours run
    python -m repro.cli sweep --multipliers NAMES   # resumable parallel grid
    python -m repro.cli hws --multiplier NAME       # HWS sweep
    python -m repro.cli export --multiplier NAME    # Verilog/BLIF dump
    python -m repro.cli serve --checkpoint CKPT --multiplier NAME  # HTTP server
    python -m repro.cli trace TRACE_DIR             # merge traces + stage report
    python -m repro.cli profile --mode retrain      # traced hotspot profile
    python -m repro.cli health RUN_DIR              # training-health report
"""

from __future__ import annotations

import argparse
import sys

from repro import __version__
from repro.multipliers.registry import TABLE1_NAMES


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.hw.report import characterize_all, format_table1

    names = tuple(args.names) if args.names else TABLE1_NAMES
    print(format_table1(characterize_all(names)))
    return 0


def _apply_no_cckernel(args: argparse.Namespace) -> None:
    """Honor ``--no-cckernel``: pin the numpy execution backend.

    Sets ``REPRO_NO_CCKERNEL`` for this process (and any forked sweep /
    serve workers) and resets the kernel cache so the flag wins even if
    an import already compiled the kernel.
    """
    if getattr(args, "no_cckernel", False):
        import os

        from repro.core import execcore

        os.environ["REPRO_NO_CCKERNEL"] = "1"
        execcore.reset_backend_state()


def _cmd_retrain(args: argparse.Namespace) -> int:
    from repro.core.lutgemm import format_engine_stats
    from repro.retrain.experiment import ExperimentScale, retrain_comparison
    from repro.retrain.results import format_table2

    _apply_no_cckernel(args)

    run_dir = getattr(args, "run_dir", None)
    if args.telemetry or run_dir:
        from pathlib import Path

        from repro.obs.telemetry import enable as telemetry_enable

        jsonl_path = None
        if run_dir:
            Path(run_dir).mkdir(parents=True, exist_ok=True)
            jsonl_path = str(Path(run_dir) / "health.jsonl")
        telemetry_enable(jsonl_path=jsonl_path)

    scale = ExperimentScale(
        image_size=args.image_size,
        n_train=args.n_train,
        n_test=max(args.n_train // 4, 64),
        width_mult=args.width_mult,
        pretrain_epochs=args.pretrain_epochs,
        retrain_epochs=args.epochs,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    if args.profile:
        from repro.obs.export import format_table
        from repro.obs.trace import get_tracer

        tracer = get_tracer()
        tracer.reset()
        tracer.enable()
    try:
        rows, refs = retrain_comparison(
            args.arch, [args.multiplier], scale, methods=("ste", "difference")
        )
    finally:
        if args.profile:
            tracer.disable()
    print(format_table2(rows, refs, title=f"{args.arch} / {args.multiplier}"))
    print()
    print(format_engine_stats())
    if args.profile:
        print()
        print(f"top {args.profile_top} hotspots by self time")
        print(format_table(tracer, sort="self", top=args.profile_top))
    from repro.obs.health import format_health_report, get_monitor

    # Covers --telemetry / --run-dir and REPRO_TELEMETRY=1 alike.
    if get_monitor().enabled:
        print()
        print(format_health_report(get_monitor().epoch_records()))
    return 0


def _cmd_health(args: argparse.Namespace) -> int:
    from pathlib import Path

    from repro.obs.health import format_health_report, load_health_jsonl

    path = Path(args.run_dir)
    if path.is_dir():
        path = path / "health.jsonl"
    records = load_health_jsonl(path)
    print(format_health_report(records, width=args.width))
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.retrain.experiment import ExperimentScale
    from repro.retrain.runner import SweepRunner
    from repro.retrain.sweep import SweepConfig
    from repro.serve.metrics import ServeMetrics

    scale = ExperimentScale(
        image_size=args.image_size,
        n_train=args.n_train,
        n_test=max(args.n_train // 4, 64),
        width_mult=args.width_mult,
        pretrain_epochs=args.pretrain_epochs,
        qat_epochs=args.qat_epochs,
        retrain_epochs=args.epochs,
        batch_size=args.batch_size,
    )
    config = SweepConfig(
        arch=args.arch,
        multipliers=list(args.multipliers),
        methods=tuple(args.methods),
        seeds=tuple(args.seeds),
        scale=scale,
        log_path=args.log,
    )

    def printer(event):
        line = f"[{event.kind:>9}] {event.run_id} attempt={event.attempt}"
        if event.elapsed_s:
            line += f" {event.elapsed_s:.1f}s"
        if event.samples_per_sec:
            line += f" {event.samples_per_sec:.1f} samples/s"
        if event.error:
            line += f" error={event.error}"
        print(line, flush=True)

    metrics = ServeMetrics()
    result = SweepRunner(
        config,
        workers=args.workers,
        resume=args.resume,
        max_retries=args.max_retries,
        metrics=metrics,
        on_event=printer,
    ).run()
    print()
    for mult in config.multipliers:
        for method in config.methods:
            vals = result.summary.final_top1.get((mult, method), [])
            if vals:
                print(
                    f"{mult:>16} / {method:<10} "
                    f"mean top-1 {result.summary.mean(mult, method):.4f} "
                    f"({len(vals)} seed(s))"
                )
            else:
                print(f"{mult:>16} / {method:<10} no completed runs")
    print()
    print(metrics.format_report())
    if result.failed:
        print(
            f"\n{len(result.failed)} cell(s) failed: "
            + ", ".join(st.run_id for st in result.failed),
            file=sys.stderr,
        )
        return 1
    return 0


def _cmd_hws(args: argparse.Namespace) -> int:
    from repro.core.hws import select_hws
    from repro.multipliers.registry import get_multiplier

    result = select_hws(
        get_multiplier(args.multiplier),
        epochs=args.epochs,
        train_size=args.n_train,
        seed=args.seed,
    )
    for hws in result.candidates:
        marker = "  <-- selected" if hws == result.best_hws else ""
        print(f"hws={hws:<3} loss={result.losses[hws]:.4f}{marker}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.circuits.export import to_blif, to_verilog
    from repro.multipliers.registry import get_multiplier

    mult = get_multiplier(args.multiplier)
    build = getattr(mult, "build_netlist", None)
    netlist = mult.netlist if hasattr(mult, "netlist") else (
        build() if build else None
    )
    if netlist is None:
        print(f"{args.multiplier} has no structural netlist", file=sys.stderr)
        return 1
    text = to_blif(netlist) if args.format == "blif" else to_verilog(netlist)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def _cmd_serve(args: argparse.Namespace) -> int:
    import os

    from repro.multipliers.registry import get_multiplier
    from repro.obs import trace as obs_trace
    from repro.retrain.checkpoint import load_checkpoint
    from repro.retrain.convert import approximate_model
    from repro.retrain.experiment import ExperimentScale, build_model
    from repro.serve import ServeMetrics, WorkerPool, compile_plan, make_server
    from repro.serve.http import install_shutdown_handlers
    from repro.serve.shard import ShardServer

    _apply_no_cckernel(args)
    # Tracing must be decided BEFORE the pool forks its workers so the
    # children inherit the enabled tracer (and the env var covers any
    # process they fork in turn).  Precedence mirrors REPRO_TELEMETRY:
    # the CLI flag wins, the env var is the ambient default.
    trace_dir = args.trace_dir
    trace_enabled = bool(
        args.trace or trace_dir or obs_trace.env_requested()
    )
    if trace_enabled:
        if trace_dir is None:
            trace_dir = "serve-trace"
        os.environ[obs_trace.TRACE_ENV] = "1"
        obs_trace.enable()
    scale = ExperimentScale(
        image_size=args.image_size,
        n_classes=args.n_classes,
        width_mult=args.width_mult,
        chunk=args.chunk,
    )
    # gradient_method="none": forward-only layers, no gradient LUTs built.
    model = approximate_model(
        build_model(args.arch, scale),
        get_multiplier(args.multiplier),
        gradient_method="none",
        include_linear=args.include_linear,
        chunk=args.chunk,
        per_channel_weights=args.per_channel,
    )
    load_checkpoint(model, args.checkpoint)
    model.eval()

    metrics = ServeMetrics()
    if args.sharded:
        # N forked worker processes over shared-memory LUT segments; one
        # plan compile in the parent, inherited by every worker.
        pool = ShardServer(
            plan_factory=lambda: compile_plan(
                model, arithmetic=args.arithmetic
            ),
            workers=args.workers,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_size=args.queue_size,
            metrics=metrics,
            trace_dir=trace_dir,
        ).start()
        mode = f"sharded x{args.workers}"
    else:
        pool = WorkerPool(
            plan_factory=lambda: compile_plan(
                model, private_engines=True, arithmetic=args.arithmetic
            ),
            workers=args.workers,
            max_batch=args.max_batch,
            max_wait_ms=args.max_wait_ms,
            queue_size=args.queue_size,
            metrics=metrics,
        ).start()
        mode = f"threads x{args.workers}"
    server = make_server(
        pool, metrics, host=args.host, port=args.port,
        model_name=f"{args.arch}/{args.multiplier}",
    )
    # SIGTERM/SIGINT now drain like Ctrl-C instead of dropping in-flight
    # requests: the handler makes serve_forever return, and the ordered
    # teardown below runs for every stop path.
    install_shutdown_handlers(server)
    host, port = server.server_address[:2]
    print(f"serving {args.arch}/{args.multiplier} ({mode}) "
          f"on http://{host}:{port}")
    print("endpoints: POST /predict, GET /healthz, GET /metrics")
    try:
        server.serve_forever()
        print("\nshutting down (draining)")
    except KeyboardInterrupt:
        print("\nshutting down")
    finally:
        # Drain the pool BEFORE closing the server: handler threads are
        # daemons (never joined by server_close), so in-flight requests
        # must resolve while the socket machinery still exists.
        pool.shutdown(drain=True)
        server.server_close()
        print(metrics.format_report())
        if trace_enabled:
            from repro.obs.export import write_chrome_trace

            os.makedirs(trace_dir, exist_ok=True)
            trace_path = os.path.join(trace_dir, "trace.json")
            write_chrome_trace(trace_path)
            print(f"trace written to {trace_path} "
                  f"(merge/report: `repro trace {trace_dir}`)")
    return 0


def _cmd_trace(args: argparse.Namespace) -> int:
    import glob
    import json
    import os

    from repro.obs.dist import (
        latency_report,
        load_trace_file,
        merge_chrome_traces,
    )

    paths: list[str] = []
    for item in args.inputs:
        if os.path.isdir(item):
            paths.extend(sorted(glob.glob(os.path.join(item, "*.json"))))
        else:
            paths.append(item)
    docs = []
    for path in paths:
        try:
            docs.append(load_trace_file(path))
        except (ValueError, json.JSONDecodeError) as exc:
            print(f"skipping {path}: {exc}", file=sys.stderr)
    if not docs:
        print("no trace files found", file=sys.stderr)
        return 1
    merged = merge_chrome_traces(docs)
    if args.output:
        with open(args.output, "w") as fh:
            json.dump(merged, fh)
        print(f"merged {len(docs)} trace file(s), "
              f"{len(merged['traceEvents'])} events -> {args.output}")
    if args.report:
        print(latency_report(merged))
    return 0


def _cmd_profile(args: argparse.Namespace) -> int:
    from repro.obs.profile import profile_retrain, profile_serve

    if args.mode == "retrain":
        report = profile_retrain(
            multiplier=args.multiplier,
            arch=args.arch,
            epochs=args.epochs,
            n_train=args.n_train,
            image_size=args.image_size,
            batch_size=args.batch_size,
            method=args.method,
            seed=args.seed,
            trace_path=args.trace,
            sort=args.sort,
            top=args.top,
        )
    else:
        report = profile_serve(
            multiplier=args.multiplier,
            arch=args.arch,
            requests=args.requests,
            workers=args.workers,
            image_size=args.image_size,
            seed=args.seed,
            trace_path=args.trace,
            sort=args.sort,
            top=args.top,
        )
    print(report.summary())
    print()
    print(report.table)
    if args.table:
        with open(args.table, "w") as fh:
            fh.write(report.summary() + "\n\n" + report.table + "\n")
        print(f"\nhotspot table written to {args.table}")
    if args.min_coverage > 0 and report.coverage < args.min_coverage:
        print(
            f"trace coverage {report.coverage * 100.0:.1f}% is below the "
            f"required {args.min_coverage * 100.0:.1f}%",
            file=sys.stderr,
        )
        return 1
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AppMult-aware retraining toolkit"
    )
    parser.add_argument(
        "--version", action="version", version=f"%(prog)s {__version__}"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="print Table I rows")
    p.add_argument("names", nargs="*", help="multiplier names (default: all)")
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("retrain", help="run one STE-vs-difference comparison")
    p.add_argument("--multiplier", required=True)
    p.add_argument("--arch", default="lenet",
                   choices=["lenet", "vgg19", "resnet18", "resnet34", "resnet50"])
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--pretrain-epochs", type=int, default=8)
    p.add_argument("--n-train", type=int, default=512)
    p.add_argument("--image-size", type=int, default=16)
    p.add_argument("--width-mult", type=float, default=0.125)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--profile", action="store_true",
                   help="trace the run and print the hottest spans at the end")
    p.add_argument("--profile-top", type=int, default=10,
                   help="how many hotspot rows --profile prints")
    p.add_argument("--telemetry", action="store_true",
                   help="enable training-health probes (gradient quality, "
                        "saturation, LUT coverage) and print a health report")
    p.add_argument("--run-dir", default=None,
                   help="directory for per-run artifacts; implies --telemetry "
                        "and streams health.jsonl there (read it back with "
                        "`repro health <dir>`)")
    p.add_argument("--no-cckernel", action="store_true",
                   help="force the numpy execution backend (skip the JIT C "
                        "kernels; results are bit-identical, only slower)")
    p.set_defaults(func=_cmd_retrain)

    p = sub.add_parser(
        "sweep", help="run a resumable (multiplier, method, seed) grid"
    )
    p.add_argument("--multipliers", nargs="+", required=True)
    p.add_argument("--methods", nargs="+", default=["ste", "difference"])
    p.add_argument("--seeds", nargs="+", type=int, default=[0])
    p.add_argument("--arch", default="lenet",
                   choices=["lenet", "vgg19", "resnet18", "resnet34", "resnet50"])
    p.add_argument("--log", default=None,
                   help="JSONL journal (required for --resume to matter)")
    p.add_argument("--workers", type=int, default=None,
                   help="process-pool size (default: $REPRO_SWEEP_WORKERS or 1)")
    p.add_argument("--resume", action=argparse.BooleanOptionalAction, default=True,
                   help="skip cells already in --log (--no-resume re-runs all)")
    p.add_argument("--max-retries", type=int, default=2,
                   help="retries per cell on transient failures")
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--pretrain-epochs", type=int, default=8)
    p.add_argument("--qat-epochs", type=int, default=2)
    p.add_argument("--n-train", type=int, default=512)
    p.add_argument("--image-size", type=int, default=16)
    p.add_argument("--width-mult", type=float, default=0.125)
    p.add_argument("--batch-size", type=int, default=32)
    p.set_defaults(func=_cmd_sweep)

    p = sub.add_parser(
        "health", help="render a training-health report from a run directory"
    )
    p.add_argument("run_dir",
                   help="run directory containing health.jsonl (or a direct "
                        "path to the JSONL file)")
    p.add_argument("--width", type=int, default=60,
                   help="plot width in characters")
    p.set_defaults(func=_cmd_health)

    p = sub.add_parser("hws", help="sweep half window sizes")
    p.add_argument("--multiplier", required=True)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--n-train", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_hws)

    p = sub.add_parser("export", help="dump a multiplier netlist")
    p.add_argument("--multiplier", required=True)
    p.add_argument("--format", choices=["verilog", "blif"], default="verilog")
    p.add_argument("--output", default=None)
    p.set_defaults(func=_cmd_export)

    p = sub.add_parser("serve", help="serve a checkpoint over HTTP")
    p.add_argument("--checkpoint", required=True, help="path to a .npz checkpoint")
    p.add_argument("--multiplier", required=True)
    p.add_argument("--arch", default="lenet",
                   choices=["lenet", "vgg19", "resnet18", "resnet34", "resnet50"])
    p.add_argument("--image-size", type=int, default=16)
    p.add_argument("--n-classes", type=int, default=10)
    p.add_argument("--width-mult", type=float, default=0.125)
    p.add_argument("--include-linear", action="store_true",
                   help="checkpoint was trained with approximate linear layers")
    p.add_argument("--per-channel", action="store_true",
                   help="checkpoint uses per-channel weight quantization")
    p.add_argument("--chunk", type=int, default=1024)
    p.add_argument("--host", default="127.0.0.1")
    p.add_argument("--port", type=int, default=8080,
                   help="TCP port (0 picks a free one)")
    p.add_argument("--workers", type=int, default=2)
    p.add_argument("--sharded", action="store_true",
                   help="fork --workers processes sharing LUT tables over "
                        "shared memory (vs threads in one process)")
    p.add_argument("--arithmetic", choices=["float", "int"], default="float",
                   help="plan lowering: float (bit-identical to eval "
                        "forward) or the integer requantized core")
    p.add_argument("--max-batch", type=int, default=8)
    p.add_argument("--max-wait-ms", type=float, default=2.0)
    p.add_argument("--queue-size", type=int, default=64)
    p.add_argument("--no-cckernel", action="store_true",
                   help="force the numpy execution backend (skip the JIT C "
                        "kernels; results are bit-identical, only slower)")
    p.add_argument("--trace", action="store_true",
                   help="enable distributed request tracing before workers "
                        "fork (REPRO_TRACE=1 does the same); serving "
                        "outputs stay bit-identical")
    p.add_argument("--trace-dir", default=None,
                   help="directory for trace artifacts (router trace, "
                        "flight-recorder black boxes); implies --trace "
                        "(default: serve-trace)")
    p.set_defaults(func=_cmd_serve)

    p = sub.add_parser(
        "trace",
        help="merge distributed trace files into one Chrome trace + report",
    )
    p.add_argument("inputs", nargs="+",
                   help="trace files or directories (router trace.json and "
                        "blackbox-*.json dumps; directories glob *.json)")
    p.add_argument("--output", default=None,
                   help="write the merged Chrome trace JSON here")
    p.add_argument("--report", action=argparse.BooleanOptionalAction,
                   default=True,
                   help="print the per-stage request latency report")
    p.set_defaults(func=_cmd_trace)

    p = sub.add_parser(
        "profile", help="trace a canned workload and report hotspots"
    )
    p.add_argument("--mode", choices=["retrain", "serve"], default="retrain")
    p.add_argument("--multiplier", default="mul6u_rm4")
    p.add_argument("--arch", default="lenet",
                   choices=["lenet", "vgg19", "resnet18", "resnet34", "resnet50"])
    p.add_argument("--epochs", type=int, default=1, help="retrain mode only")
    p.add_argument("--n-train", type=int, default=96, help="retrain mode only")
    p.add_argument("--batch-size", type=int, default=32, help="retrain mode only")
    p.add_argument("--method", default="difference",
                   choices=["ste", "difference"], help="retrain mode only")
    p.add_argument("--requests", type=int, default=64, help="serve mode only")
    p.add_argument("--workers", type=int, default=2, help="serve mode only")
    p.add_argument("--image-size", type=int, default=12)
    p.add_argument("--seed", type=int, default=0)
    p.add_argument("--trace", default=None,
                   help="write a Chrome-trace JSON (chrome://tracing) here")
    p.add_argument("--table", default=None,
                   help="also write the hotspot table to this file")
    p.add_argument("--sort", choices=["self", "total", "calls"], default="self")
    p.add_argument("--top", type=int, default=15)
    p.add_argument("--min-coverage", type=float, default=0.0,
                   help="exit 1 if root-span coverage falls below this "
                        "fraction (e.g. 0.95 for CI)")
    p.set_defaults(func=_cmd_profile)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
