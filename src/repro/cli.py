"""Command-line interface.

Three subcommands mirror the main workflows::

    python -m repro.cli characterize [names...]     # Table I rows
    python -m repro.cli retrain --multiplier NAME   # one STE-vs-ours run
    python -m repro.cli hws --multiplier NAME       # HWS sweep
    python -m repro.cli export --multiplier NAME    # Verilog/BLIF dump
"""

from __future__ import annotations

import argparse
import sys

from repro.multipliers.registry import TABLE1_NAMES


def _cmd_characterize(args: argparse.Namespace) -> int:
    from repro.hw.report import characterize_all, format_table1

    names = tuple(args.names) if args.names else TABLE1_NAMES
    print(format_table1(characterize_all(names)))
    return 0


def _cmd_retrain(args: argparse.Namespace) -> int:
    from repro.core.lutgemm import format_engine_stats
    from repro.retrain.experiment import ExperimentScale, retrain_comparison
    from repro.retrain.results import format_table2

    scale = ExperimentScale(
        image_size=args.image_size,
        n_train=args.n_train,
        n_test=max(args.n_train // 4, 64),
        width_mult=args.width_mult,
        pretrain_epochs=args.pretrain_epochs,
        retrain_epochs=args.epochs,
        batch_size=args.batch_size,
        seed=args.seed,
    )
    rows, refs = retrain_comparison(
        args.arch, [args.multiplier], scale, methods=("ste", "difference")
    )
    print(format_table2(rows, refs, title=f"{args.arch} / {args.multiplier}"))
    print()
    print(format_engine_stats())
    return 0


def _cmd_hws(args: argparse.Namespace) -> int:
    from repro.core.hws import select_hws
    from repro.multipliers.registry import get_multiplier

    result = select_hws(
        get_multiplier(args.multiplier),
        epochs=args.epochs,
        train_size=args.n_train,
        seed=args.seed,
    )
    for hws in result.candidates:
        marker = "  <-- selected" if hws == result.best_hws else ""
        print(f"hws={hws:<3} loss={result.losses[hws]:.4f}{marker}")
    return 0


def _cmd_export(args: argparse.Namespace) -> int:
    from repro.circuits.export import to_blif, to_verilog
    from repro.multipliers.registry import get_multiplier

    mult = get_multiplier(args.multiplier)
    build = getattr(mult, "build_netlist", None)
    netlist = mult.netlist if hasattr(mult, "netlist") else (
        build() if build else None
    )
    if netlist is None:
        print(f"{args.multiplier} has no structural netlist", file=sys.stderr)
        return 1
    text = to_blif(netlist) if args.format == "blif" else to_verilog(netlist)
    if args.output:
        with open(args.output, "w") as fh:
            fh.write(text)
        print(f"wrote {args.output}")
    else:
        print(text, end="")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro", description="AppMult-aware retraining toolkit"
    )
    sub = parser.add_subparsers(dest="command", required=True)

    p = sub.add_parser("characterize", help="print Table I rows")
    p.add_argument("names", nargs="*", help="multiplier names (default: all)")
    p.set_defaults(func=_cmd_characterize)

    p = sub.add_parser("retrain", help="run one STE-vs-difference comparison")
    p.add_argument("--multiplier", required=True)
    p.add_argument("--arch", default="lenet",
                   choices=["lenet", "vgg19", "resnet18", "resnet34", "resnet50"])
    p.add_argument("--epochs", type=int, default=3)
    p.add_argument("--pretrain-epochs", type=int, default=8)
    p.add_argument("--n-train", type=int, default=512)
    p.add_argument("--image-size", type=int, default=16)
    p.add_argument("--width-mult", type=float, default=0.125)
    p.add_argument("--batch-size", type=int, default=32)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_retrain)

    p = sub.add_parser("hws", help="sweep half window sizes")
    p.add_argument("--multiplier", required=True)
    p.add_argument("--epochs", type=int, default=2)
    p.add_argument("--n-train", type=int, default=256)
    p.add_argument("--seed", type=int, default=0)
    p.set_defaults(func=_cmd_hws)

    p = sub.add_parser("export", help="dump a multiplier netlist")
    p.add_argument("--multiplier", required=True)
    p.add_argument("--format", choices=["verilog", "blif"], default="verilog")
    p.add_argument("--output", default=None)
    p.set_defaults(func=_cmd_export)
    return parser


def main(argv: list[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    return args.func(args)


if __name__ == "__main__":
    raise SystemExit(main())
