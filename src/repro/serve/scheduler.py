"""Micro-batching request scheduler.

Single-sample requests are the common case for an online endpoint, but the
LUT-GEMM engine amortizes its per-call costs (weight-row index build,
scratch reuse, python dispatch) over the column dimension -- so coalescing
``B`` concurrent single-sample requests into one ``(K, B*L)`` GEMM is close
to a ``B``-fold throughput win.  :class:`MicroBatcher` implements the
standard coalescing queue:

- ``submit`` enqueues a request and returns a :class:`PendingRequest`
  future; a full queue raises :class:`ServerBusyError` (backpressure --
  the HTTP layer maps it to 503) instead of queueing without bound.
- ``next_batch`` (called by pool workers) pops up to ``max_batch``
  requests.  When the system is idle -- nothing else queued, no batch in
  flight -- a lone request executes immediately with zero added latency.
  Under load it waits up to ``max_wait_ms`` for the batch to fill.
"""

from __future__ import annotations

import itertools
import threading
import time
from collections import deque

import numpy as np

from repro.errors import ServeError, ServerBusyError
from repro.obs.trace import get_tracer

from repro.serve.metrics import ServeMetrics

_TRACE = get_tracer()

#: Process-wide request/trace id sequence.  Assigned unconditionally at
#: submit time (an int from a counter is free) so tracing can be flipped
#: on without re-plumbing ids through the queue.
_TRACE_IDS = itertools.count(1)


def _remaining(deadline: float | None) -> float | None:
    """Seconds left until ``deadline``, clamped to >= 0 (``None`` = wait
    forever).

    The clamp closes a race: the clock can advance past the deadline
    between a caller's "expired yet?" check and this computation, and
    ``Condition.wait`` must never receive a negative timeout (CPython
    happens to tolerate one today via a non-blocking acquire, but that is
    an implementation detail, not a contract).
    """
    if deadline is None:
        return None
    return max(deadline - time.monotonic(), 0.0)


class PendingRequest:
    """Future for one submitted sample."""

    __slots__ = ("payload", "enqueued_at", "trace_id", "dispatched_at",
                 "_event", "_result", "_error")

    def __init__(self, payload: np.ndarray):
        self.payload = payload
        self.enqueued_at = time.perf_counter()
        self.trace_id = next(_TRACE_IDS)
        self.dispatched_at: float | None = None  # stamped by next_batch
        self._event = threading.Event()
        self._result: np.ndarray | None = None
        self._error: BaseException | None = None

    def done(self) -> bool:
        return self._event.is_set()

    def set_result(self, value: np.ndarray) -> None:
        self._result = value
        self._event.set()

    def set_error(self, exc: BaseException) -> None:
        self._error = exc
        self._event.set()

    def result(self, timeout: float | None = None) -> np.ndarray:
        """Block until the request completes; re-raises worker errors."""
        if not self._event.wait(timeout):
            raise ServeError("timed out waiting for inference result")
        if self._error is not None:
            raise self._error
        return self._result


class MicroBatcher:
    """Bounded coalescing queue between request producers and workers."""

    def __init__(
        self,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        capacity: int = 64,
        metrics: ServeMetrics | None = None,
    ):
        if max_batch < 1:
            raise ServeError(f"max_batch must be >= 1, got {max_batch}")
        if capacity < 1:
            raise ServeError(f"capacity must be >= 1, got {capacity}")
        self.max_batch = max_batch
        self.max_wait_ms = max_wait_ms
        self.capacity = capacity
        self.metrics = metrics
        self._queue: deque[PendingRequest] = deque()
        self._cond = threading.Condition()
        self._closed = False
        self._inflight = 0

    # ------------------------------------------------------------------
    @property
    def depth(self) -> int:
        """Number of requests currently queued (excluding in-flight)."""
        with self._cond:
            return len(self._queue)

    def submit(self, payload: np.ndarray) -> PendingRequest:
        """Enqueue one sample; raises :class:`ServerBusyError` when full."""
        with self._cond:
            if self._closed:
                raise ServeError("scheduler is shut down")
            if len(self._queue) >= self.capacity:
                if self.metrics is not None:
                    self.metrics.inc("rejected_total")
                raise ServerBusyError(
                    f"request queue full ({self.capacity} pending)"
                )
            pending = PendingRequest(np.asarray(payload))
            self._queue.append(pending)
            _TRACE.count("serve.requests_submitted")
            if self.metrics is not None:
                self.metrics.inc("requests_total")
            self._cond.notify()
        return pending

    def next_batch(self, timeout: float | None = None) -> list[PendingRequest] | None:
        """Pop up to ``max_batch`` coalesced requests (worker side).

        Blocks up to ``timeout`` seconds for the first request; returns
        ``None`` on timeout or when the queue is closed and drained.  Call
        :meth:`task_done` after executing the returned batch.
        """
        with self._cond:
            deadline = None if timeout is None else time.monotonic() + timeout
            while not self._queue:
                if self._closed:
                    return None
                if deadline is not None and time.monotonic() >= deadline:
                    return None
                self._cond.wait(_remaining(deadline))
            batch = [self._queue.popleft()]
            # Idle fast path: nothing else queued and no batch in flight --
            # execute immediately rather than paying the coalescing wait.
            if self._queue or self._inflight > 0:
                coalesce_start = time.monotonic() if _TRACE.enabled else 0.0
                wait_deadline = time.monotonic() + self.max_wait_ms / 1000.0
                while len(batch) < self.max_batch and not self._closed:
                    if self._queue:
                        batch.append(self._queue.popleft())
                        continue
                    if time.monotonic() >= wait_deadline:
                        break
                    self._cond.wait(_remaining(wait_deadline))
                if _TRACE.enabled:
                    _TRACE.record(
                        "serve.coalesce_wait",
                        time.monotonic() - coalesce_start,
                        cat="serve",
                        args={"batch": len(batch)},
                    )
            self._inflight += 1
        _TRACE.count("serve.batches")
        dispatched = time.perf_counter()
        for pending in batch:
            # Re-dispatch after a worker death re-stamps: the queue wait
            # reported is always the one of the dispatch that answered.
            pending.dispatched_at = dispatched
        if self.metrics is not None:
            self.metrics.observe_batch(len(batch))
            for pending in batch:
                self.metrics.observe_queue_wait(
                    (dispatched - pending.enqueued_at) * 1000.0
                )
        return batch

    def task_done(self) -> None:
        """Mark one batch returned by :meth:`next_batch` as executed."""
        with self._cond:
            self._inflight -= 1
            self._cond.notify_all()

    def requeue(self, batch: list[PendingRequest]) -> None:
        """Return a popped batch to the *head* of the queue (re-dispatch).

        Used by the sharded router when a worker dies with the batch in
        flight: the requests go back ahead of newer traffic (preserving
        their relative order) and the batch's in-flight slot is released,
        so :meth:`drain` keeps meaning "every accepted request resolved".
        Bypasses the capacity bound -- these requests were already
        admitted once and must not be shed on the way back in.
        """
        with self._cond:
            for pending in reversed(batch):
                self._queue.appendleft(pending)
            self._inflight -= 1
            self._cond.notify_all()

    # ------------------------------------------------------------------
    def close(self) -> None:
        """Stop accepting new requests; queued work may still be drained."""
        with self._cond:
            self._closed = True
            self._cond.notify_all()

    def cancel_pending(self, exc: BaseException | None = None) -> int:
        """Fail every queued (not yet running) request; returns the count."""
        exc = exc or ServeError("server shutting down")
        with self._cond:
            cancelled = list(self._queue)
            self._queue.clear()
            self._cond.notify_all()
        for pending in cancelled:
            pending.set_error(exc)
        return len(cancelled)

    def drain(self, timeout: float | None = None) -> bool:
        """Block until the queue is empty and no batch is in flight."""
        deadline = None if timeout is None else time.monotonic() + timeout
        with self._cond:
            while self._queue or self._inflight > 0:
                if deadline is not None and time.monotonic() >= deadline:
                    return False
                self._cond.wait(_remaining(deadline))
            return True
