"""Sharded multi-process serving: router + forked plan workers.

The thread :class:`~repro.serve.pool.WorkerPool` is GIL-bound: the numpy
gather pipeline holds the interpreter for most of each batch, so adding
threads adds little throughput.  :class:`ShardServer` is the
process-level equivalent with the same outside surface (``submit`` /
``infer`` / ``batcher`` / ``metrics`` / ``shutdown``, so the HTTP layer
and CLI work unchanged):

- The parent compiles the plan **once**, publishes every LUT table and
  requant constant block into shared memory
  (:class:`~repro.serve.shm.SharedLutStore`), and forks N
  :func:`plan_worker` processes that inherit the compiled plan and the
  mappings -- per-worker incremental memory is scratch buffers only.
- A :class:`Router` feeds workers from the same bounded
  :class:`~repro.serve.scheduler.MicroBatcher` the thread pool uses
  (identical 503 load-shedding semantics), dispatching each coalesced
  batch to the **least-loaded** live worker over a duplex pipe.
- A :class:`~repro.serve.supervisor.Supervisor` watches sentinels and
  shared-memory heartbeats; a crashed or hung worker is respawned with
  capped backoff and its in-flight batches are **re-dispatched** (results
  a worker reported before dying are kept -- a batch is never both
  answered and re-run; re-execution itself is safe because plans are
  pure).  After ``max_redispatch`` deaths the batch fails fast instead.

Results are bit-identical to the single-process plan by construction:
workers run the very op closures the parent compiled, over
shared-memory views that :meth:`SharedLutStore.publish_plan` verified
bit-equal to the originals.
"""

from __future__ import annotations

import os
import threading
import time
from multiprocessing import connection
from typing import Callable

import numpy as np

from repro.errors import ServeError
from repro.obs.telemetry import MetricRegistry, get_registry
from repro.obs.trace import get_tracer
from repro.retrain.lifecycle import Heartbeat
from repro.serve.metrics import ServeMetrics
from repro.serve.plan import InferencePlan
from repro.serve.scheduler import MicroBatcher, PendingRequest
from repro.serve.shm import SharedLutStore
from repro.serve.supervisor import Supervisor, WorkerHandle

__all__ = ["ShardServer", "plan_worker", "worker_metric_families"]

_TRACE = get_tracer()

#: Latency buckets (milliseconds) for the per-worker batch histogram.
BATCH_MS_BUCKETS = (0.5, 1.0, 2.5, 5.0, 10.0, 25.0, 50.0, 100.0, 250.0, 1000.0)


def worker_metric_families(registry: MetricRegistry | None = None) -> dict:
    """The per-worker metric families, registered idempotently.

    Lives in the process-wide telemetry registry by default, so the
    families ride along on ``GET /metrics`` (JSON ``"telemetry"`` block)
    and the Prometheus text exposition with zero extra wiring.
    """
    reg = registry if registry is not None else get_registry()
    return {
        "up": reg.gauge(
            "repro_serve_worker_up",
            "1 while the worker process is alive, 0 after it died.",
            labelnames=("worker",),
        ),
        "inflight": reg.gauge(
            "repro_serve_worker_inflight",
            "Batches currently dispatched to the worker and unanswered.",
            labelnames=("worker",),
        ),
        "batches": reg.counter(
            "repro_serve_worker_batches_total",
            "Batches completed by the worker.",
            labelnames=("worker",),
        ),
        "respawns": reg.counter(
            "repro_serve_worker_respawns_total",
            "Times the supervisor respawned the worker slot.",
            labelnames=("worker",),
        ),
        "batch_ms": reg.histogram(
            "repro_serve_worker_batch_ms",
            "Per-batch plan execution time in the worker, milliseconds.",
            labelnames=("worker",),
            buckets=BATCH_MS_BUCKETS,
        ),
    }


# ----------------------------------------------------------------------
# Child process entry point.
def plan_worker(conn, index: int, hb_slab, heartbeat_s: float,
                plan: InferencePlan, trace_block=None) -> None:
    """Run batches from ``conn`` through ``plan`` until stopped.

    Forked entry point: ``plan``, ``hb_slab`` (the supervisor's writable
    heartbeat array), and ``trace_block`` (this worker's shm trace block
    when distributed tracing is on) arrive through fork inheritance,
    never pickling.  Protocol (parent -> child / child -> parent)::

        ("batch", id, xs[, trace_ids])  ->  ("result", id, ys, exec_ms)
                                         |  ("error", id, message)
        ("sync", t_send)                ->  ("sync_ack", t_send, t_local)
        ("stop",)                       ->  child exits
        <child start>                   ->  ("ready", pid)

    The ``sync`` exchange calibrates this process's ``perf_counter``
    offset against the router (:func:`repro.obs.dist.estimate_clock_offset`).
    """
    def beat() -> None:
        hb_slab[index] = time.monotonic()

    tracectx = None
    if trace_block is not None and _TRACE.enabled:
        from repro.obs.dist import install_worker_tracing

        tracectx = install_worker_tracing(trace_block)
    beat()
    hb = Heartbeat(heartbeat_s, beat, name=f"shard-worker-{index}-hb").start()
    try:
        conn.send(("ready", os.getpid()))
        while True:
            try:
                msg = conn.recv()
            except (EOFError, OSError):
                break  # parent went away
            if msg[0] == "stop":
                break
            if msg[0] == "sync":
                conn.send(("sync_ack", msg[1], time.perf_counter()))
                continue
            batch_id, xs = msg[1], msg[2]
            trace_ids = msg[3] if len(msg) > 3 else None
            t0 = time.perf_counter()
            try:
                if tracectx is not None:
                    tracectx.begin_batch(batch_id, trace_ids)
                    try:
                        with _TRACE.span("worker.batch", cat="serve",
                                         args={"batch_id": batch_id}):
                            ys = plan.run(xs)
                    finally:
                        tracectx.end_batch()
                else:
                    ys = plan.run(xs)
                exec_ms = (time.perf_counter() - t0) * 1000.0
                conn.send(("result", batch_id, ys, exec_ms))
            except Exception as exc:  # report, keep serving
                conn.send(("error", batch_id, f"{type(exc).__name__}: {exc}"))
    finally:
        hb.stop(timeout=1.0)
        try:
            conn.close()
        except OSError:
            pass


class _DispatchedBatch:
    """One coalesced batch while it is out at a worker."""

    __slots__ = ("id", "requests", "payload", "deaths", "sent_at", "worker")

    def __init__(self, batch_id: int, requests: list[PendingRequest]):
        self.id = batch_id
        self.requests = requests
        self.payload = np.stack([p.payload for p in requests])
        self.deaths = 0  # workers that died holding this batch
        self.sent_at: float | None = None  # stamped at pipe send
        self.worker: int | None = None


class ShardServer:
    """Multi-process serving shard: router + N forked plan workers.

    Duck-type compatible with :class:`~repro.serve.pool.WorkerPool`
    (``submit`` / ``infer`` / ``batcher`` / ``metrics`` / ``shutdown`` /
    ``alive_workers``), so :func:`repro.serve.http.make_server` serves a
    shard without changes.

    Args:
        plan_factory: Builds the :class:`InferencePlan` (compiled once,
            in the parent, before forking).
        workers: Worker process count.
        max_batch / max_wait_ms / queue_size: Micro-batcher knobs, same
            semantics (including 503 shedding) as the thread pool.
        max_inflight: Batches a single worker may hold unanswered; keeps
            dispatch least-loaded-meaningful and bounds re-dispatch loss.
        redispatch: Re-dispatch a dead worker's in-flight batches
            (default) instead of failing them fast.
        max_redispatch: Worker deaths one batch survives before its
            requests fail with :class:`ServeError` (guards against a
            poison batch that kills every worker it touches).
        heartbeat_s / stale_after_s / backoff_base / backoff_cap /
            max_respawns: Supervision policy, see
            :class:`~repro.serve.supervisor.Supervisor`.
        share_lut_segments: Publish LUT/requant constants into shared
            memory before forking (disable only in tests).
        trace_dir: Where distributed-trace artifacts (flight-recorder
            black boxes) are written; only used when the process tracer
            is enabled at :meth:`start` time (``repro serve --trace``).
    """

    def __init__(
        self,
        plan_factory: Callable[[], InferencePlan],
        workers: int = 2,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        queue_size: int = 64,
        metrics: ServeMetrics | None = None,
        max_inflight: int = 2,
        redispatch: bool = True,
        max_redispatch: int = 2,
        heartbeat_s: float = 0.25,
        stale_after_s: float | None = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        max_respawns: int = 5,
        on_event: Callable[[dict], None] | None = None,
        share_lut_segments: bool = True,
        trace_dir: str | None = None,
    ):
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        if max_inflight < 1:
            raise ServeError(f"max_inflight must be >= 1, got {max_inflight}")
        self.metrics = metrics or ServeMetrics()
        self.batcher = MicroBatcher(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            capacity=queue_size,
            metrics=self.metrics,
        )
        self.redispatch = redispatch
        self.max_redispatch = max_redispatch
        self.max_inflight = max_inflight
        self._wm = worker_metric_families()
        self._plan = plan_factory()  # compiled once; workers inherit it
        summary = getattr(self._plan, "op_summary", None)
        if summary is not None:
            self.metrics.set_plan_info(summary())
        self.store = SharedLutStore(prefix=f"repro-lut-{os.getpid()}")
        self.shm_info: dict = {}
        if share_lut_segments:
            self.shm_info = self.store.publish_plan(self._plan)
        self.supervisor = Supervisor(
            self._worker_entry,
            workers,
            heartbeat_s=heartbeat_s,
            stale_after_s=stale_after_s,
            backoff_base=backoff_base,
            backoff_cap=backoff_cap,
            max_respawns=max_respawns,
            on_event=self._on_supervisor_event,
        )
        self._on_event = on_event
        self.trace_dir = trace_dir
        self.tracectl = None  # ShardTraceController when tracing is on
        # One send lock per worker slot: the dispatcher (batches) and the
        # collector (clock-sync pings on "ready") both write to a worker's
        # pipe, and interleaved Connection.send bytes would corrupt the
        # stream.  Slots survive respawns, so index-keyed is enough.
        self._send_locks = [threading.Lock() for _ in range(workers)]
        self._lock = threading.Lock()
        self._slots = threading.Condition(self._lock)
        # worker index -> {batch_id: _DispatchedBatch}
        self._outstanding: dict[int, dict[int, _DispatchedBatch]] = {}
        self._next_id = 0
        self._started = False
        self._stopping = False
        self._dispatcher: threading.Thread | None = None
        self._collector: threading.Thread | None = None
        self.metrics.register_gauge("queue_depth", lambda: self.batcher.depth)
        self.metrics.register_gauge("workers", lambda: self.alive_workers)

    # ------------------------------------------------------------------
    def _worker_entry(self, conn, index, hb_slab, heartbeat_s) -> None:
        # Runs in the forked child: the trace block (a view into the
        # pre-fork shm slab) comes along for free, respawns included.
        block = (
            self.tracectl.block(index) if self.tracectl is not None else None
        )
        plan_worker(conn, index, hb_slab, heartbeat_s, self._plan, block)

    def _on_supervisor_event(self, event: dict) -> None:
        if event["event"] == "worker_spawned":
            self._wm["up"].set(1, worker=event["worker"])
            if event.get("attempt", 0) > 0:
                self._wm["respawns"].inc(worker=event["worker"])
                self.metrics.inc("worker_respawns_total")
        elif event["event"] in ("worker_down", "worker_respawn_scheduled"):
            self._wm["up"].set(0, worker=event["worker"])
            if event["event"] == "worker_down":
                self.metrics.inc("workers_lost_total")
        if self._on_event is not None:
            self._on_event(event)

    @property
    def alive_workers(self) -> int:
        return len(self.supervisor.live_handles())

    @property
    def num_workers(self) -> int:
        return self.supervisor.num_workers

    # ------------------------------------------------------------------
    def start(self) -> "ShardServer":
        """Fork the workers and start the router threads (idempotent)."""
        if self._started:
            return self
        self._started = True
        if _TRACE.enabled:
            # Create the trace slab BEFORE forking so workers inherit
            # the mapping (exactly like the heartbeat slab).
            from repro.obs.dist import ShardTraceController

            self.tracectl = ShardTraceController(
                self.num_workers, trace_dir=self.trace_dir
            )
            self.metrics.register_gauge(
                "trace_transport_dropped",
                lambda: (self.tracectl.dropped_total
                         if self.tracectl is not None else 0),
            )
        self.supervisor.start()
        if self.tracectl is not None:
            self.tracectl.start()
        self._collector = threading.Thread(
            target=self._collect_loop, name="repro-shard-collector", daemon=True
        )
        self._dispatcher = threading.Thread(
            target=self._dispatch_loop, name="repro-shard-dispatcher",
            daemon=True,
        )
        self._collector.start()
        self._dispatcher.start()
        return self

    def __enter__(self) -> "ShardServer":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    def submit(self, x: np.ndarray) -> PendingRequest:
        """Enqueue one sample; 503-style backpressure via the batcher."""
        if not self._started or self._stopping:
            raise ServeError("shard server is not running")
        if self.supervisor.all_down():
            raise ServeError("all shard workers are permanently down")
        return self.batcher.submit(x)

    def infer(self, x: np.ndarray, timeout: float | None = 30.0) -> np.ndarray:
        """Blocking convenience wrapper: submit one sample, wait, return."""
        return self.submit(x).result(timeout)

    # ------------------------------------------------------------------
    # Dispatcher: batcher -> least-loaded worker.
    def _pick_worker(self) -> WorkerHandle | None:
        """Least-loaded live worker with a free in-flight slot."""
        best, best_load = None, None
        for handle in self.supervisor.live_handles():
            load = len(self._outstanding.get(handle.index, ()))
            if load >= self.max_inflight:
                continue
            if best_load is None or load < best_load:
                best, best_load = handle, load
        return best

    def _dispatch_loop(self) -> None:
        while True:
            batch = self.batcher.next_batch(timeout=0.05)
            if batch is None:
                if self._stopping:
                    return
                continue
            rec = _DispatchedBatch(self._next_id, batch)
            self._next_id += 1
            self._dispatch(rec)

    def _dispatch(self, rec: _DispatchedBatch) -> None:
        while True:
            with self._slots:
                handle = self._pick_worker()
                if handle is None:
                    if self._stopping or self.supervisor.all_down():
                        self._fail_unassigned(rec)
                        return
                    # Every worker saturated (or mid-respawn): wait for
                    # the collector to free an in-flight slot.
                    self._slots.wait(timeout=0.1)
                    continue
                self._outstanding.setdefault(handle.index, {})[rec.id] = rec
                self._wm["inflight"].set(
                    len(self._outstanding[handle.index]), worker=handle.index
                )
            if self.tracectl is not None:
                msg = ("batch", rec.id, rec.payload,
                       [p.trace_id for p in rec.requests])
            else:
                msg = ("batch", rec.id, rec.payload)
            rec.worker = handle.index
            rec.sent_at = time.perf_counter()
            try:
                with self._send_locks[handle.index]:
                    handle.conn.send(msg)
            except (OSError, ValueError):
                # Worker died between pick and send.  If the death
                # handler already swept this batch out of outstanding it
                # owns the re-dispatch; otherwise take it back and retry
                # with another worker ourselves.
                if self._pop_outstanding(handle.index, rec.id) is not None:
                    continue
            return

    def _fail_unassigned(self, rec: _DispatchedBatch) -> None:
        """A batch that never reached a worker (stop/all-down): fail it."""
        exc = ServeError(
            "no shard workers available"
            if self.supervisor.all_down()
            else "server shutting down"
        )
        for pending in rec.requests:
            pending.set_error(exc)
        self.metrics.inc("errors_total")
        self.batcher.task_done()

    # ------------------------------------------------------------------
    # Collector: worker results + crash/hang detection + respawn.
    def _collect_loop(self) -> None:
        while True:
            # All registered handles, dead or alive: a worker that died
            # between iterations (its is_alive() already flipped) must
            # still be waited on -- its sentinel is instantly ready --
            # or the death is never handled and its in-flight batches
            # orphan silently.  live_handles() here would drop exactly
            # that handle from the waitables.
            handles = self.supervisor.handles()
            by_conn = {h.conn: h for h in handles}
            by_sentinel = {h.sentinel: h for h in handles}
            waitables = list(by_conn) + list(by_sentinel)
            timeout = 0.1
            due = self.supervisor.next_respawn_due()
            if due is not None:
                timeout = min(timeout, max(due, 0.01))
            ready = connection.wait(waitables, timeout) if waitables else []
            if not waitables:
                time.sleep(0.02)
            for obj in ready:
                handle = by_conn.get(obj)
                if handle is not None:
                    if not self._drain_conn(handle, limit=64):
                        self._handle_death(handle)
            # Sentinel-only deaths (conn had no final message).
            for obj in ready:
                handle = by_sentinel.get(obj)
                if handle is not None and not handle.is_alive():
                    self._drain_conn(handle, limit=None)
                    self._handle_death(handle)
            for handle in self.supervisor.stale_handles():
                self.metrics.inc("worker_hangs_total")
                self.supervisor.kill(handle)  # death flows via sentinel
            self.supervisor.poll_respawns()
            if self._stopping and not self._any_outstanding():
                return

    def _any_outstanding(self) -> bool:
        with self._lock:
            return any(self._outstanding.values())

    def _drain_conn(self, handle: WorkerHandle, limit: int | None) -> bool:
        """Pump complete messages off a worker's pipe.

        Returns ``False`` when the pipe hit EOF (worker died); complete
        messages buffered before death are still consumed first, so
        results computed by a dying worker are never re-run.
        """
        drained = 0
        while limit is None or drained < limit:
            try:
                if not handle.conn.poll(0):
                    return True
                msg = handle.conn.recv()
            except (EOFError, OSError):
                return False
            drained += 1
            self._handle_message(handle, msg)
        return True

    def _handle_message(self, handle: WorkerHandle, msg: tuple) -> None:
        kind = msg[0]
        if kind == "ready":
            if self.tracectl is not None:
                # Calibrate the fresh worker's perf_counter offset
                # (NTP-style single exchange; the ack comes back through
                # this collector as "sync_ack").
                try:
                    with self._send_locks[handle.index]:
                        handle.conn.send(("sync", time.perf_counter()))
                except (OSError, ValueError):
                    pass
            return
        if kind == "sync_ack":
            if self.tracectl is not None:
                self.tracectl.note_sync(
                    handle.index, msg[1], msg[2], time.perf_counter()
                )
            return
        rec = self._pop_outstanding(handle.index, msg[1])
        if rec is None:
            return  # batch was re-dispatched elsewhere after a false death
        if kind == "result":
            _, _, ys, exec_ms = msg
            done = time.perf_counter()
            traced = _TRACE.enabled
            for pending, y in zip(rec.requests, ys):
                pending.set_result(np.ascontiguousarray(y))
                total_ms = (done - pending.enqueued_at) * 1000.0
                self.metrics.observe_latency("request_ms", total_ms)
                if traced:
                    self._record_request_span(
                        pending, rec, handle, exec_ms, total_ms
                    )
            self.metrics.observe_latency("batch_exec_ms", exec_ms)
            self.metrics.inc("predictions_total", len(rec.requests))
            self._wm["batches"].inc(worker=handle.index)
            self._wm["batch_ms"].observe(exec_ms, worker=handle.index)
        else:  # ("error", id, message)
            exc = ServeError(f"worker {handle.index} failed: {msg[2]}")
            for pending in rec.requests:
                pending.set_error(exc)
            self.metrics.inc("errors_total")
        self.batcher.task_done()

    def _record_request_span(self, pending: PendingRequest,
                             rec: _DispatchedBatch, handle: WorkerHandle,
                             exec_ms: float, total_ms: float) -> None:
        """One ``serve.request`` span per answered request.

        The args carry the stage split ``repro trace`` reports on:
        queue (submit->dispatch), assembly (dispatch->pipe send), exec
        (worker-measured plan run), and transit (everything else --
        pipe transfer both ways + collector pickup), which partition
        ``total_ms`` by construction.
        """
        dispatched = pending.dispatched_at or pending.enqueued_at
        sent = rec.sent_at or dispatched
        queue_ms = (dispatched - pending.enqueued_at) * 1000.0
        assembly_ms = max((sent - dispatched) * 1000.0, 0.0)
        transit_ms = max(total_ms - queue_ms - assembly_ms - exec_ms, 0.0)
        _TRACE.record_span(
            "serve.request", pending.enqueued_at, total_ms / 1000.0,
            cat="serve",
            args={
                "trace_id": pending.trace_id,
                "batch_id": rec.id,
                "worker": handle.index,
                "queue_ms": queue_ms,
                "assembly_ms": assembly_ms,
                "exec_ms": exec_ms,
                "transit_ms": transit_ms,
                "total_ms": total_ms,
            },
        )

    def _pop_outstanding(self, index: int, batch_id: int):
        with self._slots:
            rec = self._outstanding.get(index, {}).pop(batch_id, None)
            if rec is not None:
                self._wm["inflight"].set(
                    len(self._outstanding.get(index, ())), worker=index
                )
                self._slots.notify_all()
            return rec

    def _handle_death(self, handle: WorkerHandle) -> None:
        """Crashed worker: salvage outstanding batches, ask for respawn."""
        if self.tracectl is not None:
            # Salvage the dead worker's trace state from shm before the
            # slot respawns: transported spans first, then the flight
            # ring as a black-box dump (deduped per (index, pid) -- the
            # pipe EOF and the sentinel both land here).
            self.tracectl.drain_once()
            path = self.tracectl.dump_black_box(handle.index, pid=handle.pid)
            if path is not None:
                self.metrics.inc("flight_recorder_dumps_total")
        self.supervisor.notice_death(handle)
        with self._slots:
            orphans = list(
                self._outstanding.pop(handle.index, {}).values()
            )
            self._wm["inflight"].set(0, worker=handle.index)
            self._slots.notify_all()
        if not orphans:
            return
        for rec in orphans:
            rec.deaths += 1
            if (
                self.redispatch
                and rec.deaths <= self.max_redispatch
                and not self._stopping
                and not self.supervisor.all_down()
            ):
                # Back to the head of the global queue: the dispatcher
                # re-coalesces and re-sends to a live worker.  Safe to
                # re-run -- plans are pure functions of the input.
                self.batcher.requeue(rec.requests)
                self.metrics.inc("redispatched_batches_total")
            else:
                exc = ServeError(
                    f"worker died with batch in flight "
                    f"(after {rec.deaths} attempt(s))"
                )
                for pending in rec.requests:
                    pending.set_error(exc)
                self.metrics.inc("errors_total")
                self.batcher.task_done()

    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the shard.

        With ``drain=True`` the queue closes, every accepted request
        resolves (including re-dispatches), then workers and router
        threads stop and all shared-memory segments are unlinked.
        """
        if not self._started or self._stopping:
            if not self._stopping:
                self._stopping = True
                self.supervisor.stop()
                self._close_tracectl()
                self.store.close()
            return
        self.batcher.close()
        if drain:
            self.batcher.drain(timeout)
        else:
            self.batcher.cancel_pending()
        self._stopping = True
        with self._slots:
            self._slots.notify_all()
        if self._dispatcher is not None:
            self._dispatcher.join(timeout)
        if self._collector is not None:
            self._collector.join(timeout)
        # Fail anything still outstanding (collector exited on timeout).
        with self._slots:
            leftovers = [
                rec for m in self._outstanding.values() for rec in m.values()
            ]
            self._outstanding.clear()
        for rec in leftovers:
            for pending in rec.requests:
                pending.set_error(ServeError("server shutting down"))
            self.batcher.task_done()
        self.supervisor.stop()
        self._close_tracectl()
        self.store.close()

    def _close_tracectl(self) -> None:
        """Final trace drain + slab unlink (workers are stopped by now).

        The controller object stays around (closed): its drop count is
        cached so the ``trace_transport_dropped`` gauge and post-run
        exports keep reporting the final number.
        """
        if self.tracectl is not None:
            self.tracectl.stop()
            self.tracectl.close()
