"""Shared-memory publication of read-only serving constants.

The sharded serving subsystem (:mod:`repro.serve.shard`) runs one compiled
plan per worker *process*.  The big immutable inputs of that plan -- the
forward product LUTs of every engine (up to ``(2^B)^2`` entries each) and
the per-layer fixed-point requant constant blocks -- must exist exactly
once per host, not once per worker.  :class:`SharedLutStore` puts each of
them into a named ``multiprocessing.shared_memory`` segment and hands out
zero-copy, read-only numpy views, extending the PR-1 process-level engine
cache across process boundaries:

- :meth:`SharedLutStore.publish` copies an array into a fresh segment
  **once per key**; re-publishing the same key returns the existing
  segment (and verifies the payload matches -- two different tables must
  never silently alias one name).
- :meth:`SharedLutStore.attach` maps a published segment by spec and
  returns a read-only view; attaches are refcounted per key so N layers
  sharing one LUT map it once per process.
- :meth:`SharedLutStore.publish_plan` walks a compiled
  :class:`~repro.serve.plan.InferencePlan`, publishes every forward LUT
  table (via :meth:`repro.core.lutgemm.LutGemm.shared_tables`) and every
  requant constant block, and rebinds the plan in place onto the shared
  views -- after which forked workers inherit mappings of the single
  host-wide copy.

Cleanup is ownership-based: only the creating process may
:meth:`~SharedLutStore.close` (unlink) a segment, so a store inherited
over ``fork`` can never destroy the host-wide copy; a SIGKILLed worker
leaks nothing because its mappings die with it and the name lives with
the owner.  If the *owner* dies without cleanup, the stdlib resource
tracker removes the segments at interpreter teardown -- attaches
deliberately unregister themselves from the tracker so each segment has
exactly one registered guardian (the double-registration otherwise
produces spurious "leaked shared_memory" unlink attempts at worker exit).
"""

from __future__ import annotations

import os
import threading
from dataclasses import dataclass
from multiprocessing import resource_tracker, shared_memory

import numpy as np

from repro.errors import ServeError

__all__ = [
    "MutableSlab",
    "SharedArraySpec",
    "SharedLutStore",
    "segment_exists",
]


@dataclass(frozen=True)
class SharedArraySpec:
    """Everything needed to re-map one published array in any process."""

    key: str
    segment: str
    shape: tuple[int, ...]
    dtype: str

    def nbytes(self) -> int:
        count = 1
        for dim in self.shape:
            count *= dim
        return count * np.dtype(self.dtype).itemsize


class _Segment:
    """One mapped segment plus its in-process refcount."""

    __slots__ = ("spec", "shm", "view", "owned", "refs")

    def __init__(self, spec, shm, view, owned):
        self.spec = spec
        self.shm = shm
        self.view = view
        self.owned = owned
        self.refs = 1


def _view(shm: shared_memory.SharedMemory, spec: SharedArraySpec) -> np.ndarray:
    arr = np.ndarray(spec.shape, dtype=np.dtype(spec.dtype), buffer=shm.buf)
    arr.flags.writeable = False  # published tables are immutable
    return arr


#: Where Linux exposes POSIX shared-memory objects as files.
_SHM_DIR = "/dev/shm"


def segment_exists(name: str) -> bool:
    """Whether a shared-memory segment ``name`` currently exists on the host.

    Probes ``/dev/shm`` directly where available (a ``SharedMemory``
    attach would touch the resource tracker's bookkeeping; a liveness
    check must have zero side effects on the real segment).
    """
    if os.path.isdir(_SHM_DIR):
        return os.path.exists(os.path.join(_SHM_DIR, name.lstrip("/")))
    try:
        probe = shared_memory.SharedMemory(name=name)
    except FileNotFoundError:
        return False
    probe.close()
    return True


class MutableSlab:
    """One *writable* named shared-memory segment with owner-gated unlink.

    The read-only :class:`SharedLutStore` segments carry immutable plan
    constants; a ``MutableSlab`` carries live cross-process state -- the
    supervisor's heartbeat cells and the distributed-trace ring buffers
    (:mod:`repro.obs.dist`).  Same hygiene rules as the store:

    - the creating process is the *owner* and the only one that may
      unlink; a slab inherited over ``fork`` (or attached by name) only
      unmaps on :meth:`close`, so the host-wide backing survives workers;
    - attaches unregister themselves from the stdlib resource tracker so
      the segment has exactly one registered guardian;
    - callers must drop any :meth:`as_array` views *before* calling
      :meth:`close` (a live numpy view holds a buffer export and
      ``SharedMemory.close`` would raise ``BufferError``).
    """

    __slots__ = ("shm", "_owner_pid", "_closed")

    def __init__(self, name: str, size: int | None = None,
                 create: bool = True):
        if create:
            if size is None:
                raise ServeError("MutableSlab(create=True) requires a size")
            self.shm = shared_memory.SharedMemory(
                create=True, size=max(int(size), 1), name=name
            )
            self._owner_pid = os.getpid()
        else:
            try:
                self.shm = shared_memory.SharedMemory(name=name)
            except FileNotFoundError as exc:
                raise ServeError(
                    f"shared slab {name!r} does not exist"
                ) from exc
            # Keep the creator as the segment's only tracker guardian
            # (see module docstring).
            resource_tracker.unregister(self.shm._name, "shared_memory")
            self._owner_pid = -1
        self._closed = False

    # ------------------------------------------------------------------
    @property
    def name(self) -> str:
        return self.shm.name

    @property
    def size(self) -> int:
        return self.shm.size

    @property
    def buf(self):
        return self.shm.buf

    @property
    def is_owner(self) -> bool:
        return os.getpid() == self._owner_pid

    def as_array(self, dtype, shape, offset: int = 0) -> np.ndarray:
        """A writable numpy view over ``shape`` items at byte ``offset``."""
        return np.ndarray(shape, dtype=np.dtype(dtype),
                          buffer=self.shm.buf, offset=offset)

    def close(self) -> None:
        """Unmap; the owner also unlinks.  Idempotent.

        All :meth:`as_array` views must be dropped first.
        """
        if self._closed:
            return
        self._closed = True
        self.shm.close()
        if self.is_owner:
            # Rebalance the tracker exactly like SharedLutStore._release:
            # a same-tracker attacher unregistered the name, and unlink's
            # own unregister would otherwise warn about an unknown
            # resource.  ``register`` is an idempotent set-add.
            resource_tracker.register(self.shm._name, "shared_memory")
            try:
                self.shm.unlink()
            except FileNotFoundError:
                pass  # already removed (e.g. external cleanup)


class SharedLutStore:
    """Refcounted registry of shared-memory array segments for one host.

    One store is created by the serving parent (the segment *owner*); the
    same object, inherited over ``fork``, acts as the attach-side handle
    in every worker.  All methods are thread-safe.
    """

    def __init__(self, prefix: str = "repro-lut"):
        self.prefix = prefix
        self._lock = threading.Lock()
        self._segments: dict[str, _Segment] = {}
        self._owner_pid = os.getpid()
        self._seq = 0
        self._closed = False
        # Undo log for publish_plan's in-place rebinds: the process-level
        # engine cache outlives this store, so everything pointed at a
        # shared view must be pointed back at private memory before the
        # views are unmapped (else the next compile_plan reads a dangling
        # mmap and segfaults).
        self._restore: list = []

    # ------------------------------------------------------------------
    @property
    def is_owner(self) -> bool:
        """Whether this process created the store (may unlink segments)."""
        return os.getpid() == self._owner_pid

    def owned_segments(self) -> list[str]:
        """Names of segments this store created (still linked)."""
        with self._lock:
            return sorted(
                seg.spec.segment
                for seg in self._segments.values()
                if seg.owned
            )

    def attached_segments(self) -> list[str]:
        """Names of segments currently mapped by this store."""
        with self._lock:
            return sorted(seg.spec.segment for seg in self._segments.values())

    def spec(self, key: str) -> SharedArraySpec | None:
        with self._lock:
            seg = self._segments.get(key)
            return None if seg is None else seg.spec

    # ------------------------------------------------------------------
    def publish(self, key: str, arr: np.ndarray) -> np.ndarray:
        """Copy ``arr`` into a shared segment for ``key`` (once per key).

        Returns the read-only shared view.  A second publish of the same
        key returns the existing view after verifying the payload is
        bit-identical -- distinct tables must never alias one key.
        """
        arr = np.ascontiguousarray(arr)
        with self._lock:
            if self._closed:
                raise ServeError("SharedLutStore is closed")
            seg = self._segments.get(key)
            if seg is not None:
                if (
                    seg.view.shape != arr.shape
                    or seg.view.dtype != arr.dtype
                    or not np.array_equal(seg.view, arr)
                ):
                    raise ServeError(
                        f"shared segment key {key!r} already published "
                        "with different contents"
                    )
                seg.refs += 1
                return seg.view
            if not self.is_owner:
                raise ServeError(
                    "only the owning process may publish new segments "
                    f"(owner pid {self._owner_pid}, this pid {os.getpid()})"
                )
            self._seq += 1
            name = f"{self.prefix}-{self._owner_pid}-{self._seq}"
            shm = shared_memory.SharedMemory(
                create=True, size=max(int(arr.nbytes), 1), name=name
            )
            spec = SharedArraySpec(
                key=key,
                segment=shm.name,
                shape=tuple(arr.shape),
                dtype=str(arr.dtype),
            )
            dst = np.ndarray(arr.shape, dtype=arr.dtype, buffer=shm.buf)
            dst[...] = arr
            view = _view(shm, spec)
            self._segments[key] = _Segment(spec, shm, view, owned=True)
            return view

    def attach(self, spec: SharedArraySpec) -> np.ndarray:
        """Map the segment described by ``spec``; returns a read-only view.

        Refcounted per key: repeated attaches in one process share one
        mapping.  Raises :class:`ServeError` when the segment is gone
        (owner already unlinked it).
        """
        with self._lock:
            if self._closed:
                raise ServeError("SharedLutStore is closed")
            seg = self._segments.get(spec.key)
            if seg is not None:
                seg.refs += 1
                return seg.view
            try:
                shm = shared_memory.SharedMemory(name=spec.segment)
            except FileNotFoundError as exc:
                raise ServeError(
                    f"shared segment {spec.segment!r} does not exist "
                    "(owner closed the store?)"
                ) from exc
            # The attach registered this process as a second guardian of
            # the segment; drop it so only the creator's registration
            # remains (see module docstring).
            resource_tracker.unregister(shm._name, "shared_memory")
            if shm.size < spec.nbytes():
                shm.close()
                raise ServeError(
                    f"shared segment {spec.segment!r} is smaller than "
                    f"spec {spec.shape}/{spec.dtype}"
                )
            view = _view(shm, spec)
            self._segments[spec.key] = _Segment(spec, shm, view, owned=False)
            return view

    def detach(self, key: str) -> None:
        """Drop one reference to ``key``; unmap at refcount zero.

        In the owning process the segment is also unlinked at zero, so a
        fully-released table frees its ``/dev/shm`` backing immediately.
        """
        with self._lock:
            seg = self._segments.get(key)
            if seg is None:
                return
            seg.refs -= 1
            if seg.refs > 0:
                return
            del self._segments[key]
            self._release(seg)

    def close(self) -> None:
        """Unmap every segment; the owner also unlinks what it created.

        Idempotent.  Safe to call from forked children: they only unmap
        (ownership is pid-checked), so the host-wide copy survives until
        the owner closes.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            restore = list(self._restore)
            self._restore.clear()
            segments = list(self._segments.values())
            self._segments.clear()
        # Point rebound engines/ops back at private memory while the
        # shared views are still mapped (copies are bit-identical, so the
        # adopt/rebind equality checks hold).
        for fn in restore:
            fn()
        for seg in segments:
            self._release(seg)

    def _release(self, seg: _Segment) -> None:
        seg.view = None  # drop the buffer export before closing the mmap
        seg.shm.close()
        if seg.owned and self.is_owner:
            # Rebalance the tracker first: an attacher sharing this
            # process's resource tracker (forked child, same-process
            # test) unregistered the name on attach, and ``unlink``'s own
            # unregister would otherwise make the tracker complain about
            # an unknown resource.  ``register`` is an idempotent set-add.
            resource_tracker.register(seg.shm._name, "shared_memory")
            try:
                seg.shm.unlink()
            except FileNotFoundError:
                pass  # already removed (e.g. external cleanup)

    def __enter__(self) -> "SharedLutStore":
        return self

    def __exit__(self, *exc) -> None:
        self.close()

    # ------------------------------------------------------------------
    # Plan-level publication.
    def publish_plan(self, plan) -> dict:
        """Publish ``plan``'s LUT tables and requant blocks; rebind in place.

        Walks the compiled op list:

        - every distinct LUT-GEMM engine gets its forward tables published
          under content-independent keys (``lut/<multiplier>/<bits>``) and
          adopted back via
          :meth:`repro.core.lutgemm.LutGemm.adopt_shared_tables`, so the
          engine -- including the process-level cache entry other plans
          share -- now reads from the host-wide copy;
        - every requant constant block -- standalone ``requant`` ops *and*
          the ``(M0, D0, shift)`` view inside ``fused_int`` ops (exposed
          via :func:`repro.serve.plan.requant_params_of`) -- is published
          and the op is rebound over the shared views (bit-identical: the
          arrays are exact copies).  Fused ops re-resolve their constants
          through the bound view at call time, so the C kernel reads the
          shared segments zero-copy.

        Returns a summary dict (keys, segment names, total bytes) for
        logs and metrics.
        """
        from repro.nn.requant import RequantParams
        from repro.serve.plan import (
            InferencePlan,
            rebind_requant_op,
            requant_params_of,
        )

        if not isinstance(plan, InferencePlan):
            raise ServeError(f"publish_plan expects an InferencePlan, "
                             f"got {type(plan).__name__}")
        published: list[str] = []
        total = 0
        for engine in plan.engines():
            for name, table in engine.shared_tables().items():
                key = f"lut/{engine.multiplier.name}/{engine.bits}/{name}"
                view = self.publish(key, table)
                engine.adopt_shared_tables(**{name: view})
                # The engine may be the process-level cache entry, reused
                # by future compiles after this store is gone: re-adopt a
                # private copy of the (still mapped) view at close time.
                def _restore_engine(engine=engine, name=name, view=view):
                    engine.adopt_shared_tables(
                        **{name: np.array(view, copy=True)}
                    )
                self._restore.append(_restore_engine)
                published.append(key)
                total += view.nbytes
        for i, op in enumerate(plan.ops):
            rp = requant_params_of(op)
            if not isinstance(rp, RequantParams):
                continue
            shared = RequantParams(
                m0=self.publish(f"requant/{i}/{op.name}/m0", rp.m0),
                d0=self.publish(f"requant/{i}/{op.name}/d0", rp.d0),
                shift=self.publish(f"requant/{i}/{op.name}/shift", rp.shift),
                qmin=rp.qmin,
                qmax=rp.qmax,
                acc_abs_max=rp.acc_abs_max,
            )
            rebind_requant_op(op, shared)
            # The original (private) constant blocks are tiny: keep them
            # and swap them back at close so the plan object stays usable.
            def _restore_op(op=op, rp=rp):
                rebind_requant_op(op, rp)
            self._restore.append(_restore_op)
            published.append(f"requant/{i}/{op.name}")
            total += rp.m0.nbytes + rp.d0.nbytes + rp.shift.nbytes
        return {
            "keys": published,
            "segments": self.owned_segments(),
            "bytes": total,
        }
