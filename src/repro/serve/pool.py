"""Thread-based inference worker pool with backpressure and graceful drain.

Each worker owns its own compiled :class:`~repro.serve.plan.InferencePlan`
(compiled once at thread start and reused for every batch -- plans built
with ``private_engines=True`` so the LUT-GEMM scratch buffers are never
shared across threads).  Work arrives pre-coalesced from the
:class:`~repro.serve.scheduler.MicroBatcher`; a full queue rejects with
:class:`~repro.errors.ServerBusyError` (HTTP 503) instead of queueing
without bound, and :meth:`WorkerPool.shutdown` drains in-flight work before
joining the threads.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

import numpy as np

from repro.errors import ServeError
from repro.obs.trace import get_tracer
from repro.serve.metrics import ServeMetrics
from repro.serve.plan import InferencePlan
from repro.serve.scheduler import MicroBatcher, PendingRequest

_TRACE = get_tracer()


class WorkerPool:
    """Runs compiled plans over micro-batches on ``workers`` threads."""

    def __init__(
        self,
        plan_factory: Callable[[], InferencePlan],
        workers: int = 2,
        max_batch: int = 8,
        max_wait_ms: float = 2.0,
        queue_size: int = 64,
        metrics: ServeMetrics | None = None,
    ):
        if workers < 1:
            raise ServeError(f"workers must be >= 1, got {workers}")
        self.metrics = metrics or ServeMetrics()
        self.batcher = MicroBatcher(
            max_batch=max_batch,
            max_wait_ms=max_wait_ms,
            capacity=queue_size,
            metrics=self.metrics,
        )
        self.metrics.register_gauge("queue_depth", lambda: self.batcher.depth)
        self.metrics.register_gauge("workers", lambda: len(self._threads))
        self._plan_factory = plan_factory
        self._stopping = False
        self._started = False
        self._threads = [
            threading.Thread(
                target=self._worker_loop,
                name=f"repro-serve-worker-{i}",
                daemon=True,
            )
            for i in range(workers)
        ]

    # ------------------------------------------------------------------
    def start(self) -> "WorkerPool":
        """Start the worker threads (idempotent)."""
        if not self._started:
            self._started = True
            for t in self._threads:
                t.start()
        return self

    def __enter__(self) -> "WorkerPool":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.shutdown()

    @property
    def alive_workers(self) -> int:
        """Live worker threads (duck-type parity with ``ShardServer``)."""
        return sum(1 for t in self._threads if t.is_alive())

    # ------------------------------------------------------------------
    def submit(self, x: np.ndarray) -> PendingRequest:
        """Enqueue one sample for inference; returns a future.

        Raises:
            ServerBusyError: When the bounded queue is full (the caller
                should shed load / return HTTP 503).
            ServeError: When the pool is not running.
        """
        if not self._started or self._stopping:
            raise ServeError("worker pool is not running")
        return self.batcher.submit(x)

    def infer(self, x: np.ndarray, timeout: float | None = 30.0) -> np.ndarray:
        """Blocking convenience wrapper: submit one sample, wait, return."""
        return self.submit(x).result(timeout)

    # ------------------------------------------------------------------
    def _worker_loop(self) -> None:
        with _TRACE.span("serve.plan_compile", cat="serve"):
            plan = self._plan_factory()  # compiled once, reused per worker
        summary = getattr(plan, "op_summary", None)
        if summary is not None:  # duck-typed plan stubs lack it
            self.metrics.set_plan_info(summary())
        while True:
            batch = self.batcher.next_batch(timeout=0.05)
            if batch is None:
                if self._stopping:
                    return
                continue
            self._execute(plan, batch)

    def _execute(self, plan: InferencePlan, batch: list[PendingRequest]) -> None:
        try:
            try:
                xs = np.stack([p.payload for p in batch])
                t0 = time.perf_counter()
                with _TRACE.span("serve.batch_exec", cat="serve"):
                    ys = plan.run(xs)
                exec_ms = (time.perf_counter() - t0) * 1000.0
                done = time.perf_counter()
                for pending, y in zip(batch, ys):
                    pending.set_result(np.ascontiguousarray(y))
                    self.metrics.observe_latency(
                        "request_ms", (done - pending.enqueued_at) * 1000.0
                    )
                self.metrics.observe_latency("batch_exec_ms", exec_ms)
                self.metrics.inc("predictions_total", len(batch))
            except Exception as exc:  # propagate to every waiting caller
                self.metrics.inc("errors_total")
                for pending in batch:
                    pending.set_error(exc)
        finally:
            self.batcher.task_done()

    # ------------------------------------------------------------------
    def shutdown(self, drain: bool = True, timeout: float = 30.0) -> None:
        """Stop the pool.

        With ``drain=True`` (default) the queue stops accepting new work,
        already-queued requests finish, and workers exit once idle; with
        ``drain=False`` queued requests fail immediately with
        :class:`ServeError`.
        """
        self._stopping = True
        self.batcher.close()
        if drain:
            self.batcher.drain(timeout)
        else:
            self.batcher.cancel_pending()
        for t in self._threads:
            if t.is_alive():
                t.join(timeout)
