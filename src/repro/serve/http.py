"""Stdlib HTTP front-end for the serving stack.

Endpoints (JSON in, JSON out, no dependencies beyond ``http.server``):

- ``GET  /healthz`` -- liveness probe with model name and worker count.
- ``GET  /metrics`` -- metrics snapshot; ``?format=text`` returns a
  Prometheus-style text exposition (serving metrics unified with
  :mod:`repro.obs` tracer counters/spans), ``?format=report`` the
  human-readable report, default JSON.
- ``POST /predict`` -- body ``{"inputs": <sample or batch>}``.  A batch is
  split into single-sample requests so the micro-batching scheduler can
  coalesce them with other traffic; a full queue returns **503** with a
  ``Retry-After`` header (backpressure), malformed input returns **400**.
"""

from __future__ import annotations

import json
import signal
import threading
import time
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

import numpy as np

from repro.errors import ServeError, ServerBusyError
from repro.obs.trace import get_tracer
from repro.serve.metrics import ServeMetrics
from repro.serve.pool import WorkerPool

_TRACE = get_tracer()


class ServingHTTPServer(ThreadingHTTPServer):
    """ThreadingHTTPServer carrying the serving context for its handlers."""

    daemon_threads = True

    def __init__(
        self,
        address: tuple[str, int],
        pool: WorkerPool,
        metrics: ServeMetrics,
        model_name: str = "model",
        input_ndim: int = 3,
        request_timeout: float = 30.0,
    ):
        super().__init__(address, _Handler)
        self.pool = pool
        self.metrics = metrics
        self.model_name = model_name
        self.input_ndim = input_ndim
        self.request_timeout = request_timeout


class _Handler(BaseHTTPRequestHandler):
    server: ServingHTTPServer

    # ------------------------------------------------------------------
    def _send_json(self, status: int, payload: dict, headers: dict | None = None) -> None:
        body = json.dumps(payload).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)

    def _send_text(self, status: int, text: str) -> None:
        body = text.encode()
        self.send_response(status)
        self.send_header("Content-Type", "text/plain; charset=utf-8")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def log_message(self, fmt, *args):  # keep test/CI output clean
        pass

    # ------------------------------------------------------------------
    def do_GET(self) -> None:
        path, _, query = self.path.partition("?")
        if path == "/healthz":
            payload = {
                "status": "ok",
                "model": self.server.model_name,
                "queue_depth": self.server.pool.batcher.depth,
            }
            # Duck-typed: WorkerPool counts threads, ShardServer counts
            # live worker processes.
            workers = getattr(self.server.pool, "alive_workers", None)
            if workers is not None:
                payload["workers"] = workers
            self._send_json(200, payload)
        elif path == "/metrics":
            if "format=text" in query:
                self._send_text(200, self.server.metrics.prometheus_text())
            elif "format=report" in query:
                self._send_text(200, self.server.metrics.format_report() + "\n")
            else:
                self._send_json(200, self.server.metrics.as_dict())
        else:
            self._send_json(404, {"error": f"no such endpoint: {path}"})

    def do_POST(self) -> None:
        if self.path.partition("?")[0] != "/predict":
            self._send_json(404, {"error": f"no such endpoint: {self.path}"})
            return
        try:
            length = int(self.headers.get("Content-Length", 0))
            payload = json.loads(self.rfile.read(length) or b"{}")
            samples = self._parse_inputs(payload)
        except (ValueError, TypeError, KeyError) as exc:
            self._send_json(400, {"error": f"bad request: {exc}"})
            return
        t0 = time.perf_counter() if _TRACE.enabled else 0.0
        try:
            # One submission per sample: the scheduler coalesces them (and
            # any concurrent traffic) back into micro-batches.
            futures = [self.server.pool.submit(s) for s in samples]
            outputs = [f.result(self.server.request_timeout) for f in futures]
        except ServerBusyError as exc:
            self._send_json(503, {"error": str(exc)}, headers={"Retry-After": "1"})
            return
        except ServeError as exc:
            self._send_json(500, {"error": str(exc)})
            return
        if _TRACE.enabled:
            # HTTP ingress span: the root of each request's span tree.
            # trace_ids link it to the per-request serve.request spans
            # (and through them to the worker-side batch spans).
            _TRACE.record(
                "http.predict", time.perf_counter() - t0, cat="serve",
                args={
                    "n": len(futures),
                    "trace_ids": [
                        getattr(f, "trace_id", None) for f in futures
                    ],
                },
            )
        self._send_json(200, {
            "model": self.server.model_name,
            "outputs": [out.tolist() for out in outputs],
            "predictions": [int(np.argmax(out)) for out in outputs],
        })

    def _parse_inputs(self, payload: dict) -> list[np.ndarray]:
        if "inputs" not in payload:
            raise KeyError('missing "inputs" field')
        arr = np.asarray(payload["inputs"], dtype=np.float64)
        ndim = self.server.input_ndim
        if arr.ndim == ndim:
            return [arr]
        if arr.ndim == ndim + 1:
            if arr.shape[0] == 0:
                raise ValueError("empty batch")
            return list(arr)
        raise ValueError(
            f"expected a {ndim}-d sample or {ndim + 1}-d batch, "
            f"got shape {arr.shape}"
        )


def make_server(
    pool: WorkerPool,
    metrics: ServeMetrics,
    host: str = "127.0.0.1",
    port: int = 0,
    model_name: str = "model",
    input_ndim: int = 3,
    request_timeout: float = 30.0,
) -> ServingHTTPServer:
    """Build (but do not start) the HTTP server; ``port=0`` picks a free one."""
    return ServingHTTPServer(
        (host, port), pool, metrics,
        model_name=model_name,
        input_ndim=input_ndim,
        request_timeout=request_timeout,
    )


def install_shutdown_handlers(
    server: ServingHTTPServer,
    signals: tuple = (signal.SIGTERM, signal.SIGINT),
) -> dict:
    """Route SIGTERM/SIGINT into a graceful stop of ``server``.

    Historically only the KeyboardInterrupt path of ``repro serve``
    drained the scheduler; a SIGTERM (the signal every process manager
    actually sends) killed the process mid-request.  The installed
    handler asks ``serve_forever`` to return -- from a helper thread,
    because :meth:`socketserver.BaseServer.shutdown` blocks until the
    serve loop exits and must never run inside the signal frame of the
    thread running that loop.  The caller's normal post-``serve_forever``
    path (pool drain, ``server_close``) then runs exactly as it does for
    Ctrl-C.  A second signal raises :class:`KeyboardInterrupt` for an
    immediate (non-draining) exit.

    Returns ``{signum: previous_handler}`` so tests (or embedders) can
    restore the prior disposition.
    """
    fired = {"count": 0}

    def handler(signum, frame):
        fired["count"] += 1
        if fired["count"] > 1:
            raise KeyboardInterrupt
        threading.Thread(
            target=server.shutdown, name="repro-serve-shutdown", daemon=True
        ).start()

    previous = {}
    for signum in signals:
        previous[signum] = signal.signal(signum, handler)
    return previous
