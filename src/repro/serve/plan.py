"""Inference plan compiler: Module graph -> tape-free op list.

:func:`compile_plan` walks a (calibrated, frozen) model and emits an
:class:`InferencePlan`: an ordered list of closures over raw numpy arrays.
No :class:`~repro.autograd.tensor.Tensor` tape is recorded, no gradient
LUTs are touched, and every input-independent quantity (quantized weights,
Eq. 8 zero-point corrections, BN eval-mode scale/shift) is precomputed once
at compile time via :class:`repro.nn.approx.FrozenAffine`.

Two lowering modes:

- ``arithmetic="float"`` (default): every op replicates the eval-mode
  float operations of the training graph in the same order, so plan
  outputs are **bit-identical** to ``model.eval()(Tensor(x)).data`` -- the
  property the serve tests and ``benchmarks/bench_serve.py`` assert.

- ``arithmetic="int"``: the deployment arithmetic the paper's AppMult
  accelerators assume.  Runs of approximate layers compile into an
  *integer core*: one ``quant`` op maps the float input onto the first
  layer's uint8 grid, each LUT-GEMM emits an int32/int64 accumulator
  (``lutgemm_int``), and a fixed-point ``requant`` op (``M0`` multiply +
  rounding right shift + saturating cast, see :mod:`repro.nn.requant`)
  lands it directly on the *next* approximate layer's uint8 grid -- no
  float tensor anywhere until the final exact ``dequant``.  ReLU becomes
  ``max(q, Z)``, max pooling and reshapes pass uint8 through unchanged,
  and a BatchNorm directly after a gather folds into the requant
  constants; all three commute exactly with monotone quantization.  Ops
  that do not commute (average pooling, global average pooling, plain
  float layers, a non-adjacent BN) close the region with an exact integer
  dequant and the plan falls back to float until the next approximate
  layer.  :func:`assert_integer_core` is the plan-walk gate for "no float
  dtype between input quant and final dequant".

  By default integer plans are additionally run through
  :func:`fuse_integer_plan`: every ``lutgemm_int -> requant [-> relu]``
  run becomes one ``fused_int`` op executing gather + correction +
  fixed-point requant + ReLU clamp in a single
  :func:`repro.core.execcore.serve_fused` call (one C loop; numpy
  fallback bit-identical).  See ``docs/serving.md`` for the fusion
  rules and which ops break a fused run.

Supported modules: all :mod:`repro.nn.layers` leaves, the approximate
layers, and the model-zoo blocks (residual ``BasicBlock``/``Bottleneck``,
MobileNet ``SeparableBlock``).  Composite modules without a registered
handler are compiled by walking their children in definition order (correct
for every linear-pipeline model in :mod:`repro.models`); pass
``example_input`` to verify the compiled plan against the training graph
when compiling an architecture the compiler has not seen before.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import PlanShapeError, ServeError
from repro.nn import functional as F
from repro.nn.approx import ApproxConv2d, ApproxLinear, FrozenAffine
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.module import Module
from repro.nn.quant import QuantParams, compute_requant, quant_dtype
from repro.nn.requant import RequantParams, requantize
from repro.obs.trace import get_tracer

_TRACE = get_tracer()

#: Canonical dtype tag of the float domain.
FLOAT = "float64"


class PlanOp:
    """One compiled step: a named closure ``(ndarray) -> ndarray``.

    ``dtype_in``/``dtype_out`` tag the tensor domain each op consumes and
    produces (``"float64"``, ``"uint8"``, ``"int64"`` ...), so traces,
    :meth:`InferencePlan.describe`, and the integer-core plan walk can
    show exactly where the pipeline is integer and where float runs.

    ``params`` carries the compile-time constant object behind the
    closure when one exists -- the :class:`~repro.nn.approx.FrozenAffine`
    of a LUT-GEMM op, the :class:`~repro.nn.requant.RequantParams` of a
    requant op, the :class:`_FusedIntFn` of a fused op -- so post-compile
    passes (shared-memory publication in :mod:`repro.serve.shm`) can
    reach and rebind the underlying arrays.

    ``meta`` is a small dict of compile-time facts later passes need but
    the closure hides (conv geometry on a ``lutgemm_int`` op, the integer
    ReLU's clamp zero point): :func:`fuse_integer_plan` reads it to
    rebuild fusable op runs without re-walking the model.
    """

    __slots__ = ("name", "kind", "fn", "dtype_in", "dtype_out", "params",
                 "meta")

    def __init__(
        self,
        name: str,
        kind: str,
        fn: Callable[[np.ndarray], np.ndarray],
        dtype_in: str = FLOAT,
        dtype_out: str = FLOAT,
        params=None,
        meta: dict | None = None,
    ):
        self.name = name
        self.kind = kind
        self.fn = fn
        self.dtype_in = dtype_in
        self.dtype_out = dtype_out
        self.params = params
        self.meta = meta

    def __repr__(self) -> str:
        return (
            f"PlanOp({self.name!r}, kind={self.kind!r}, "
            f"{self.dtype_in}->{self.dtype_out})"
        )


class InferencePlan:
    """An ordered, tape-free op list compiled from a frozen model."""

    def __init__(
        self, ops: list[PlanOp], model_name: str = "", arithmetic: str = "float"
    ):
        self.ops = ops
        self.model_name = model_name
        self.arithmetic = arithmetic

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the plan on a batch; returns the output array."""
        out = np.asarray(x, dtype=np.float64)
        for op in self.ops:
            out = op.fn(out)
        return out

    __call__ = run

    @property
    def lutgemm_ops(self) -> int:
        """Number of LUT-GEMM (approximate) ops in the plan."""
        return sum(
            1
            for op in self.ops
            if op.kind in ("lutgemm", "lutgemm_int", "fused_int")
        )

    @property
    def fused_ops(self) -> int:
        """Number of fused gather+requant(+relu) ops in the plan."""
        return sum(1 for op in self.ops if op.kind == "fused_int")

    def integer_core(self) -> tuple[int, int] | None:
        """Op-index span ``(first quant, last dequant)``, or ``None``."""
        starts = [i for i, op in enumerate(self.ops) if op.kind == "quant"]
        ends = [i for i, op in enumerate(self.ops) if op.kind == "dequant"]
        if not starts or not ends:
            return None
        return starts[0], ends[-1]

    def op_summary(self) -> dict:
        """JSON-friendly per-op-kind/dtype counts (``/metrics`` plan info)."""
        kinds: dict[str, int] = {}
        dtypes: dict[str, int] = {}
        for op in self.ops:
            kinds[op.kind] = kinds.get(op.kind, 0) + 1
            key = f"{op.dtype_in}->{op.dtype_out}"
            dtypes[key] = dtypes.get(key, 0) + 1
        from repro.core import execcore

        backend = execcore.backend_info()
        return {
            "model": self.model_name,
            "arithmetic": self.arithmetic,
            "ops": len(self.ops),
            "lutgemm_ops": self.lutgemm_ops,
            "fused_ops": self.fused_ops,
            "kinds": kinds,
            "dtypes": dtypes,
            "integer_only_core": integer_core_report(self)["integer_only"],
            # Shared-execution-core backend the LUT-GEMM ops lower onto
            # (the same core the training tape uses; "numpy" when no C
            # compiler is available or REPRO_NO_CCKERNEL is set).
            "gemm_backend": backend["forward_backend"],
            # Backend of the fused gather+requant+relu serving ops
            # ("numpy" also when the serving self-check refused the C
            # kernel on this platform).
            "serve_backend": backend["serve_backend"],
            "gemm_threads": backend["threads"],
        }

    def engines(self) -> list:
        """The distinct LUT-GEMM engines this plan gathers through.

        Deduplicated by identity (cached engines are shared across
        layers); order follows first use in the op list.  Used by the
        shared-memory layer to publish every table exactly once.
        """
        seen: list = []
        for op in self.ops:
            fa = op.params
            engine = getattr(fa, "engine", None)
            if engine is not None and all(engine is not e for e in seen):
                seen.append(engine)
        return seen

    def describe(self) -> str:
        """Numbered op listing for logs and ``repro serve`` startup."""
        from repro.core import execcore

        backend = execcore.backend_info()
        fused = (
            f", {self.fused_ops} fused "
            f"[{backend['serve_backend']} serve backend]"
            if self.fused_ops
            else ""
        )
        header = (
            f"InferencePlan({self.model_name or 'model'}, "
            f"{self.arithmetic}): "
            f"{len(self.ops)} ops, {self.lutgemm_ops} LUT-GEMM "
            f"[{backend['forward_backend']} backend]{fused}"
        )
        lines = [header] + [
            f"  {i:3d}. [{op.kind}] {op.name}  "
            f"({op.dtype_in} -> {op.dtype_out})"
            for i, op in enumerate(self.ops)
        ]
        return "\n".join(lines)


def integer_core_report(plan: InferencePlan) -> dict:
    """Plan-walk report of float usage inside the integer core.

    Returns a dict with ``has_core`` (a quant..dequant span exists),
    ``float_ops`` (names of ops between them touching a float dtype --
    fallback regions), and ``integer_only`` (core exists and is clean).
    """
    core = plan.integer_core()
    if core is None:
        return {
            "has_core": False,
            "integer_only": False,
            "float_ops": [],
            "span": None,
        }
    start, end = core
    float_ops = [
        op.name
        for op in plan.ops[start + 1 : end]
        if "float" in op.dtype_in or "float" in op.dtype_out
    ]
    return {
        "has_core": True,
        "integer_only": not float_ops,
        "float_ops": float_ops,
        "span": (start, end),
    }


def assert_integer_core(plan: InferencePlan) -> None:
    """Assert no float dtype between input quantization and final dequant.

    The acceptance gate of the integer lowering: raises
    :class:`ServeError` naming every float op inside the core, or when the
    plan has no integer core at all.
    """
    report = integer_core_report(plan)
    if not report["has_core"]:
        raise ServeError(
            f"plan {plan.model_name!r} has no quant -> dequant integer core"
        )
    if report["float_ops"]:
        raise ServeError(
            f"float tensors inside the integer core of plan "
            f"{plan.model_name!r}: {', '.join(report['float_ops'])}"
        )


# ----------------------------------------------------------------------
# Compile context: mutable state threaded through the module walk.
# ----------------------------------------------------------------------
def _unresolved(x):
    raise ServeError(
        "internal error: unresolved placeholder op executed; the compile "
        "walk must resolve every pending requantization before returning"
    )


#: Sentinel ``fn`` marking ops deleted at finalize (e.g. a folded BN).
_REMOVED = object()


def _strip_removed(ops: list[PlanOp]) -> list[PlanOp]:
    return [op for op in ops if op.fn is not _REMOVED]


def _float_relu(x):
    # Matches Tensor.relu: multiply by the bool mask.
    return x * (x > 0)


def _int_relu_fn(z):
    def fn(x):
        return np.maximum(x, z)

    return fn


def _chan(arr, m: int, extra: int):
    """(M,) constants as a (1, M, 1...) float64 broadcast view."""
    return np.asarray(arr, dtype=np.float64).reshape((1, m) + (1,) * extra)


def _chan_or_scalar(v, m: int, extra: int):
    arr = np.ravel(np.asarray(v, dtype=np.float64))
    if arr.size == 1:
        return float(arr[0])
    return arr.reshape((1, m) + (1,) * extra)


def _make_requant_fn(rp) -> Callable[[np.ndarray], np.ndarray]:
    """The requant op closure over constants ``rp`` (a RequantParams).

    Shared between compile-time resolution and post-compile rebinding
    (:func:`rebind_requant_op`), so a rebound op runs the exact same code
    over the replacement constant block.
    """

    def fn(acc, _rp=rp):
        with _TRACE.span("serve.requant", cat="serve"):
            return requantize(acc, _rp, channel_axis=1)

    return fn


def requant_params_of(op: PlanOp):
    """The :class:`~repro.nn.requant.RequantParams` behind ``op``, if any.

    Post-compile passes (shared-memory publication) use this instead of
    assuming ``op.params`` *is* the constant block: a plain ``requant``
    op carries it directly, a ``fused_int`` op carries a
    :class:`_FusedIntFn` whose ``rp`` attribute is the live view.
    """
    if op.kind == "requant":
        return op.params
    if op.kind == "fused_int":
        return op.fn.rp
    return None


def _check_requant_identical(op: PlanOp, cur, rp) -> None:
    if cur is not None and not (
        np.array_equal(cur.m0, rp.m0)
        and np.array_equal(cur.d0, rp.d0)
        and np.array_equal(cur.shift, rp.shift)
        and cur.qmin == rp.qmin
        and cur.qmax == rp.qmax
    ):
        raise ServeError(
            f"rebind_requant_op: replacement constants for {op.name!r} "
            "differ from the compiled ones"
        )


def rebind_requant_op(op: PlanOp, rp) -> None:
    """Swap a compiled requant or fused op onto a replacement constant block.

    ``rp`` must be value-identical to the op's current constants (the
    shared-memory layer passes exact copies living in shm segments); only
    the storage moves, so outputs stay bit-identical.

    A plain ``requant`` op is rebuilt over the new block.  A ``fused_int``
    op never captures the constants in a closure -- its
    :class:`_FusedIntFn` re-resolves ``m0``/``d0``/``shift`` through its
    ``rp`` view on *every call* -- so rebinding is a single attribute
    swap and the fused C kernel reads the shm-backed arrays in place.
    (The old closure-swap implementation would have been silently ignored
    by a fused op: the kernel never looked at ``op.fn``'s cell contents.)
    """
    if op.kind == "fused_int":
        fused = op.fn
        _check_requant_identical(op, fused.rp, rp)
        fused.rp = rp
        return
    if op.kind != "requant":
        raise ServeError(f"rebind_requant_op on non-requant op {op.name!r}")
    _check_requant_identical(op, op.params, rp)
    op.fn = _make_requant_fn(rp)
    op.params = rp


class _FusedIntFn:
    """Callable body of a ``fused_int`` op: one C loop per LUT-GEMM layer.

    Replaces a ``lutgemm_int -> requant [-> int relu]`` op run with a
    single call into :func:`repro.core.execcore.serve_fused`: gather,
    weight-zero-point correction, fixed-point requantization, and the
    ReLU clamp run in one loop while the accumulator row stays in cache,
    and the reshape back to image layout happens on the uint8 result
    (a quarter of the unfused int64 traffic).

    Every constant that post-compile passes may rebind is re-resolved
    **at call time**: ``rp`` (the :class:`RequantParams` view --
    :func:`rebind_requant_op` swaps it onto shm-backed arrays) and the
    engine's forward table (``LutGemm.adopt_shared_tables`` swaps it to
    the host-wide shm copy), so sharded workers read the fused constants
    zero-copy with no closure rebuild.  The instance doubles as the op's
    ``params``: it exposes ``engine`` for :meth:`InferencePlan.engines`
    and ``rp`` for :func:`requant_params_of`.
    """

    __slots__ = ("fa", "engine", "rp", "relu_z", "spatial", "kh", "kw",
                 "stride", "pad", "zx", "acc_dtype", "wrow", "wrow_bounds",
                 "zw")

    def __init__(self, fa: FrozenAffine, rp, relu_z: int | None, meta: dict):
        self.fa = fa
        self.engine = fa.engine
        self.rp = rp
        self.relu_z = relu_z
        self.spatial = meta["spatial"]
        if self.spatial:
            self.kh = meta["kh"]
            self.kw = meta["kw"]
            self.stride = meta["stride"]
            self.pad = meta["pad"]
            self.zx = meta["zx"]
        else:
            self.kh = self.kw = self.stride = self.pad = self.zx = None
        self.acc_dtype = meta["acc_dtype"]
        # Input-independent gather operands, built once per compile.
        self.wrow = np.ascontiguousarray(
            (fa.wq * self.engine.levels).astype(np.int64)
        )
        # Feeds the kernel's in-bounds proof (no-clamp gather); the
        # weights are frozen, so the extrema never change post-compile.
        self.wrow_bounds = (
            (int(self.wrow.min()), int(self.wrow.max()))
            if self.wrow.size
            else None
        )
        self.zw = np.ascontiguousarray(
            np.atleast_1d(np.asarray(fa.zw_int, dtype=np.int64))
        )

    def _gemm(
        self,
        xq: np.ndarray,
        xq_bounds: tuple[int, int] | None,
        colsum: np.ndarray | None = None,
    ) -> np.ndarray:
        rp = self.rp  # the live view: rebinding swaps this attribute
        # max(q, Z) over a [qmin, qmax] clip folds to a raised lower
        # rail (Z >= qmin on a zero-including grid).
        qlo = rp.qmin if self.relu_z is None else max(rp.qmin, self.relu_z)
        from repro.core import execcore

        return execcore.serve_fused(
            self.engine, self.fa.wq, self.wrow, xq, self.zw,
            rp.m0, rp.d0, rp.shift, qlo, rp.qmax, self.acc_dtype,
            wrow_bounds=self.wrow_bounds, xq_bounds=xq_bounds,
            colsum=colsum,
        )

    def __call__(self, x: np.ndarray) -> np.ndarray:
        fa = self.fa
        from repro.core import execcore, lutkernel

        # Plan inputs to a fused op are uint8 activations (and the
        # im2col pad value is the uint8 zero point), so the gather
        # indices are in bounds by construction -- no per-call scan.
        xqb = (0, 0xFF) if x.dtype == np.uint8 else None
        with _TRACE.span("serve.fused_int", cat="serve"):
            if not self.spatial:
                xq = np.ascontiguousarray(x.T, dtype=np.int32)
                return np.ascontiguousarray(self._gemm(xq, xqb).T)  # (N, M)
            n, c, h, w = x.shape
            oh, ow = F.conv_output_size(
                h, w, self.kh, self.kw, self.stride, self.pad
            )
            # Padding with Z_x is bit-identical to padding the float
            # tensor with 0 and quantizing (Q(0) == Z).
            with _TRACE.span("serve.im2col", cat="serve"):
                res = (
                    lutkernel.im2col_serve(
                        x, self.kh, self.kw, self.stride, self.pad, self.zx
                    )
                    if x.dtype == np.uint8
                    and execcore.serve_kernel_trusted()
                    else None
                )
                if res is not None:
                    xq, colsum = res
                else:
                    cols = F.im2col(
                        x, self.kh, self.kw, self.stride, self.pad,
                        pad_value=self.zx,
                    )
                    xq = np.ascontiguousarray(
                        cols.transpose(1, 0, 2).reshape(fa.k, n * oh * ow),
                        dtype=np.int32,
                    )
                    colsum = None
            q = self._gemm(xq, xqb, colsum)  # (M, C) uint8
            return (
                q.reshape(fa.m, n, oh * ow)
                .transpose(1, 0, 2)
                .reshape(n, fa.m, oh, ow)
            )


def fuse_integer_plan(plan: InferencePlan) -> int:
    """Fuse ``lutgemm_int -> requant [-> int relu]`` runs in place.

    The plan-fusion pass of the integer pipeline: each matched run is
    replaced by one ``fused_int`` :class:`PlanOp` whose
    :class:`_FusedIntFn` body executes gather + requant + relu in a
    single :func:`repro.core.execcore.serve_fused` call.  Returns the
    number of fused ops created.

    A run only fuses when the gather op carries its geometry ``meta``
    (compiled by this module's handlers), the requant constants are a
    :class:`~repro.nn.requant.RequantParams` block targeting a uint8
    grid (the C kernel's output width), and the optional following act
    op is an integer ReLU (tagged with its clamp ``relu_z``).  Ops that
    close the integer region -- average pooling, global average pooling,
    the final exact ``dequant`` -- never match the pattern, so a fused
    run always ends at one of them; a pool/reshape *between* requant and
    relu leaves the relu standalone (only the gather+requant pair
    fuses).  Fused plans are bit-identical to unfused ones on both
    execution backends.
    """
    ops = plan.ops
    new_ops: list[PlanOp] = []
    created = 0
    i = 0
    while i < len(ops):
        op = ops[i]
        nxt = ops[i + 1] if i + 1 < len(ops) else None
        if (
            op.kind == "lutgemm_int"
            and op.meta is not None
            and nxt is not None
            and nxt.kind == "requant"
            and isinstance(nxt.params, RequantParams)
            and nxt.params.out_dtype() == np.uint8
        ):
            rp = nxt.params
            j = i + 2
            relu_z = None
            if (
                j < len(ops)
                and ops[j].kind == "act"
                and ops[j].meta is not None
                and "relu_z" in ops[j].meta
            ):
                relu_z = ops[j].meta["relu_z"]
                j += 1
            fn = _FusedIntFn(op.params, rp, relu_z, op.meta)
            suffix = "+requant+relu" if relu_z is not None else "+requant"
            new_ops.append(
                PlanOp(
                    f"{op.name}{suffix}",
                    "fused_int",
                    fn,
                    "uint8",
                    str(rp.out_dtype()),
                    params=fn,
                    meta={"fused": [o.name for o in ops[i:j]]},
                )
            )
            created += 1
            i = j
            continue
        new_ops.append(op)
        i += 1
    plan.ops = new_ops
    return created


class _PendingRequant:
    """An open integer region awaiting its requantization target.

    Created right after an integer LUT-GEMM gather: the accumulator's fate
    is not known until the walk reaches the next module -- another
    approximate layer (requantize straight onto its input grid) or
    anything else (exact float dequant).  The requant op and every
    commuting op emitted in between are mutable placeholders patched in
    place by :meth:`resolve_to_int` / :meth:`resolve_to_float`;
    ``compile_plan`` finalizes all regions before the plan escapes, so an
    unresolved placeholder can never run.
    """

    def __init__(self, name: str, fa: FrozenAffine, op: PlanOp, spatial: bool):
        self.name = name
        self.fa = fa
        self.op = op  # placeholder: becomes "requant" or "dequant"
        self.spatial = spatial  # conv (N, M, OH, OW) layout vs linear (N, M)
        # A BatchNorm folds into the requant constants only when it is
        # directly adjacent to the gather (ReLU/pool in between do not
        # commute with the affine for negative BN slopes).
        self.can_fold_bn = spatial
        self.bn: tuple | None = None  # (gain, shift, float_fn, bn_op)
        self.relus: list[PlanOp] = []
        self.passthrough: list[PlanOp] = []
        self.acc_abs_max = fa.acc_abs_bound()

    def fold_bn(self, gain, shift, float_fn, op: PlanOp) -> None:
        self.bn = (gain, shift, float_fn, op)
        self.can_fold_bn = False

    def _affine_constants(self):
        """``y = m_real * A + d_real`` per output channel, in real units.

        ``A`` is the :meth:`FrozenAffine.gather_int` accumulator; the
        constants fold the Eq. 8 per-channel corrections, the bias, and
        any adjacent BatchNorm.
        """
        fa = self.fa
        scale = np.ravel(np.asarray(fa.scale, dtype=np.float64))
        const = np.ravel(np.asarray(fa.const_corr, dtype=np.float64))
        w_corr = fa.w_corr.astype(np.float64)  # (M,)
        c0 = scale * (const - w_corr)
        if fa.bias is not None:
            c0 = c0 + fa.bias
        if self.bn is not None:
            gain, shift, _fn, _op = self.bn
            return scale * gain, c0 * gain + shift
        return scale, c0

    def resolve_to_int(self, qp: QuantParams) -> None:
        """Requantize the accumulator straight onto grid ``qp``."""
        m_real, d_real = self._affine_constants()
        rp = compute_requant(m_real, d_real, qp, self.acc_abs_max)
        op = self.op
        op.fn = _make_requant_fn(rp)
        op.name = f"{self.name}.requant"
        op.kind = "requant"
        op.dtype_out = str(rp.out_dtype())
        op.params = rp
        if self.bn is not None:
            self.bn[3].fn = _REMOVED  # folded into (m0, d0)
        qd = str(rp.out_dtype())
        z = rp.out_dtype().type(qp.zero_point)
        for r in self.relus:
            # relu commutes with monotone quantization: Q(max(y, 0)) ==
            # max(Q(y), Z) because Q(0) == Z exactly (zero-including grid).
            r.fn = _int_relu_fn(z)
            r.kind = "act"
            r.dtype_in = r.dtype_out = qd
            # The clamp value, visible to the fusion pass (max(q, Z) over
            # a [qmin, qmax] clip folds to a raised lower rail).
            r.meta = {"relu_z": int(qp.zero_point)}
        for p in self.passthrough:
            # windowed max / reshape keep their dtype-polymorphic fn.
            p.dtype_in = p.dtype_out = qd

    def resolve_to_float(self) -> None:
        """Close the region with the exact float dequantization.

        Element-for-element the same value sequence as
        :meth:`FrozenAffine.apply`'s dequant (every intermediate is an
        integer-valued float64 below 2**53, so the regrouped correction
        order is exact), keeping fallback plans bit-identical to the
        float-mode plan.
        """
        fa = self.fa
        extra = 2 if self.spatial else 0
        w_corr = _chan(fa.w_corr, fa.m, extra)
        const_corr = _chan_or_scalar(fa.const_corr, fa.m, extra)
        scale = _chan_or_scalar(fa.scale, fa.m, extra)
        bias = None if fa.bias is None else _chan(fa.bias, fa.m, extra)

        def fn(acc):
            with _TRACE.span("serve.dequantize", cat="serve"):
                y = acc.astype(np.float64)
                y -= w_corr
                y += const_corr
                y *= scale
                if bias is not None:
                    y = y + bias
            return y

        op = self.op
        op.fn = fn
        op.name = f"{self.name}.dequant"
        op.kind = "dequant"
        op.dtype_out = FLOAT
        if self.bn is not None:
            _gain, _shift, float_fn, bn_op = self.bn
            bn_op.fn = float_fn
            bn_op.kind = "float"
            bn_op.dtype_in = bn_op.dtype_out = FLOAT
        for r in self.relus:
            r.fn = _float_relu
            r.kind = "act"
            r.dtype_in = r.dtype_out = FLOAT
        for p in self.passthrough:
            p.dtype_in = p.dtype_out = FLOAT


class _CompileCtx:
    """Mutable compile-walk state: op list + the open integer region."""

    def __init__(self, private_engines: bool, integer: bool):
        self.ops: list[PlanOp] = []
        self.private_engines = private_engines
        self.integer = integer
        self.pending: _PendingRequant | None = None

    # -- region management ---------------------------------------------
    def resolve_float(self) -> None:
        if self.pending is not None:
            self.pending.resolve_to_float()
            self.pending = None

    def finalize(self) -> None:
        """Close any open integer region (model output must be float)."""
        self.resolve_float()

    def open_region(self, name: str, fa: FrozenAffine, spatial: bool) -> None:
        dtype_out = str(quant_dtype(fa.x_qparams.bits))
        op = PlanOp(f"{name}.out", "pending", _unresolved, "int64", dtype_out)
        self.ops.append(op)
        self.pending = _PendingRequant(name, fa, op, spatial)

    # -- op emission ----------------------------------------------------
    def append_float(self, op: PlanOp) -> None:
        """Emit a float-domain op, closing any open integer region first."""
        self.resolve_float()
        self.ops.append(op)

    def emit_relu(self, name: str) -> None:
        if self.pending is not None:
            qd = self.pending.op.dtype_out
            op = PlanOp(name, "pending", _unresolved, qd, qd)
            self.ops.append(op)
            self.pending.relus.append(op)
            self.pending.can_fold_bn = False
        else:
            self.ops.append(PlanOp(name, "act", _float_relu))

    def emit_passthrough(self, name: str, kind: str, fn) -> None:
        """Emit a dtype-polymorphic op (windowed max, reshape).

        These commute exactly with monotone quantization, so inside an
        open integer region the same closure runs on the uint8 tensor.
        """
        if self.pending is not None:
            qd = self.pending.op.dtype_out
            op = PlanOp(name, kind, fn, qd, qd)
            self.ops.append(op)
            self.pending.passthrough.append(op)
            self.pending.can_fold_bn = False
        else:
            self.ops.append(PlanOp(name, kind, fn))


# ----------------------------------------------------------------------
# Per-module compilation handlers.
_COMPILERS: dict[type, Callable] = {}


def register_compiler(module_type: type):
    """Register a compile handler for ``module_type`` (extension point).

    Handlers have signature ``(module, ctx, prefix)`` where ``ctx`` is the
    compile context; emit float-domain ops with ``ctx.append_float`` so an
    open integer region is closed correctly first.
    """

    def deco(fn):
        _COMPILERS[module_type] = fn
        return fn

    return deco


def _compile_into(module: Module, ctx: _CompileCtx, prefix: str) -> None:
    for klass in type(module).__mro__:
        handler = _COMPILERS.get(klass)
        if handler is not None:
            handler(module, ctx, prefix)
            return
    # Composite fallback: children execute in definition order.  Every
    # linear-pipeline model (LeNet, VGG, MobileNet, ResNet top level)
    # satisfies this; blocks with non-linear dataflow need a registered
    # handler (see BasicBlock/Bottleneck below).
    children = list(module._children())
    if not children:
        raise ServeError(
            f"cannot compile {type(module).__name__} at {prefix or '<root>'}: "
            "no handler registered and no children to recurse into"
        )
    for name, child in children:
        _compile_into(child, ctx, f"{prefix}{name}.")


def _subplan(module: Module, prefix: str, ctx: _CompileCtx) -> list[PlanOp]:
    """Compile ``module`` into a self-contained float-in/float-out op list."""
    child = _CompileCtx(ctx.private_engines, ctx.integer)
    _compile_into(module, child, prefix)
    child.finalize()
    return _strip_removed(child.ops)


def _run_ops(ops: list[PlanOp], x: np.ndarray) -> np.ndarray:
    for op in ops:
        x = op.fn(x)
    return x


@register_compiler(Sequential)
def _compile_sequential(module, ctx, prefix):
    for i, step in enumerate(module.steps):
        _compile_into(step, ctx, f"{prefix}{i}.")


@register_compiler(Identity)
def _compile_identity(module, ctx, prefix):
    pass  # no-op (keeps any open integer region open)


@register_compiler(Dropout)
def _compile_dropout(module, ctx, prefix):
    pass  # identity in eval mode


@register_compiler(ReLU)
def _compile_relu(module, ctx, prefix):
    ctx.emit_relu(f"{prefix}relu")


@register_compiler(Flatten)
def _compile_flatten(module, ctx, prefix):
    # reshape(-1) cannot infer the flattened width when the batch is empty,
    # so compute it explicitly: zero-row micro-batches must flow through.
    ctx.emit_passthrough(
        f"{prefix}flatten",
        "shape",
        lambda x: x.reshape((x.shape[0], int(np.prod(x.shape[1:], dtype=np.int64)))),
    )


def _pool_patches(x, kernel, stride, oh, ow):
    n, c = x.shape[:2]
    sn, sc, sh, sw = x.strides
    return as_strided(
        x,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


@register_compiler(MaxPool2d)
def _compile_maxpool(module, ctx, prefix):
    kernel = module.kernel_size
    stride = module.stride or kernel

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kernel, kernel, stride, 0)
        # The selected value equals the tape's argmax/take_along_axis pick,
        # so a direct windowed max is bit-identical (and much cheaper).
        # Dtype-polymorphic: max commutes with monotone quantization, so
        # the same closure serves the uint8 integer region.
        return _pool_patches(x, kernel, stride, oh, ow).max(axis=(-1, -2))

    ctx.emit_passthrough(f"{prefix}maxpool{kernel}", "pool", fn)


@register_compiler(AvgPool2d)
def _compile_avgpool(module, ctx, prefix):
    kernel = module.kernel_size
    stride = module.stride or kernel

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kernel, kernel, stride, 0)
        return _pool_patches(x, kernel, stride, oh, ow).mean(axis=(-1, -2))

    # Averaging does not commute with quantization: float fallback op.
    ctx.append_float(PlanOp(f"{prefix}avgpool{kernel}", "pool", fn))


@register_compiler(GlobalAvgPool2d)
def _compile_gap(module, ctx, prefix):
    # F.gap2d is the shared sum * (1/HW) expression Tensor.mean lowers to;
    # a division-based mean here would drift bitwise (regression-tested
    # with a crafted HW).  Not integer-commuting: float fallback op.
    ctx.append_float(PlanOp(f"{prefix}gap", "pool", lambda x: F.gap2d(x)))


@register_compiler(BatchNorm2d)
def _compile_batchnorm(module, ctx, prefix):
    # Eval-mode BN with running statistics, frozen at compile time.
    mean = module.running_mean.copy().reshape(1, -1, 1, 1)
    inv_std = (1.0 / np.sqrt(module.running_var + module.eps)).reshape(1, -1, 1, 1)
    gamma = module.gamma.data.copy().reshape(1, -1, 1, 1)
    beta = module.beta.data.copy().reshape(1, -1, 1, 1)

    def fn(x):
        return ((x - mean) * inv_std) * gamma + beta

    pending = ctx.pending
    if (
        pending is not None
        and pending.can_fold_bn
        and mean.size == pending.fa.m
    ):
        # Directly adjacent to the gather: the affine folds into the
        # fixed-point (M0, D0) constants.  If the region later falls back
        # to float, this placeholder becomes the exact float BN instead.
        op = PlanOp(f"{prefix}bn", "pending", _unresolved, "uint8", "uint8")
        ctx.ops.append(op)
        pending.fold_bn(
            gain=(inv_std * gamma).ravel(),
            shift=(beta - mean * inv_std * gamma).ravel(),
            float_fn=fn,
            op=op,
        )
    else:
        ctx.append_float(PlanOp(f"{prefix}bn", "float", fn))


@register_compiler(Conv2d)
def _compile_conv2d(module, ctx, prefix):
    kh = kw = module.kernel_size
    stride, pad = module.stride, module.padding
    oc = module.out_channels
    wmat = module.weight.data.copy().reshape(oc, -1)
    bias = None if module.bias is None else module.bias.data.copy()

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kh, kw, stride, pad)
        cols = F.im2col(x, kh, kw, stride, pad)
        out = np.matmul(wmat, cols)
        if bias is not None:
            out = out + bias.reshape(1, oc, 1)
        return out.reshape(n, oc, oh, ow)

    ctx.append_float(PlanOp(f"{prefix}conv{kh}x{kw}", "float", fn))


@register_compiler(DepthwiseConv2d)
def _compile_depthwise(module, ctx, prefix):
    kh = kw = module.kernel_size
    stride, pad = module.stride, module.padding
    ch = module.channels
    wmat = module.weight.data.copy().reshape(ch, kh * kw)
    bias = None if module.bias is None else module.bias.data.copy()

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kh, kw, stride, pad)
        cols = F.im2col(x, kh, kw, stride, pad).reshape(n, c, kh * kw, oh * ow)
        out = np.einsum("cj,ncjl->ncl", wmat, cols)
        if bias is not None:
            out = out + bias.reshape(1, c, 1)
        return out.reshape(n, c, oh, ow)

    # Depthwise convs are never approximated (no LUT layer exists for
    # them), so they always run in the float domain.
    ctx.append_float(PlanOp(f"{prefix}dwconv{kh}x{kw}", "float", fn))


@register_compiler(Linear)
def _compile_linear(module, ctx, prefix):
    weight = module.weight.data.copy()
    bias = None if module.bias is None else module.bias.data.copy()

    def fn(x):
        out = x @ weight.T
        if bias is not None:
            out = out + bias
        return out

    ctx.append_float(PlanOp(f"{prefix}linear", "float", fn))


# ----------------------------------------------------------------------
# Approximate layers: float lowering + the integer-core lowering.
# ----------------------------------------------------------------------
def _make_quant_op(name: str, qp: QuantParams) -> PlanOp:
    scale, zp = qp.scale, qp.zero_point
    qmin, qmax = qp.qmin, qp.qmax
    out_dtype = quant_dtype(qp.bits)

    def fn(x):
        # Exactly FrozenAffine.apply's quantize sequence (same float ops,
        # same order), so the integer core sees identical grid values.
        with _TRACE.span("serve.quantize", cat="serve"):
            buf = x / scale
            buf += zp
            np.rint(buf, out=buf)
            np.clip(buf, qmin, qmax, out=buf)
            return buf.astype(out_dtype)

    return PlanOp(name, "quant", fn, FLOAT, str(out_dtype))


def _begin_integer_region(ctx: _CompileCtx, prefix: str, fa: FrozenAffine):
    """Land the input on ``fa``'s uint8 grid: requantize the previous
    region's accumulator straight onto it, or quantize the float tensor."""
    qp = fa.x_qparams
    if ctx.pending is not None:
        ctx.pending.resolve_to_int(qp)
        ctx.pending = None
    else:
        ctx.ops.append(_make_quant_op(f"{prefix}quant", qp))


@register_compiler(ApproxConv2d)
def _compile_approx_conv(module, ctx, prefix):
    fa = module.frozen_affine(private_engine=ctx.private_engines)
    kh = kw = module.kernel_size
    stride, pad = module.stride, module.padding
    name = f"{prefix}approx_conv{kh}x{kw}[{module.multiplier.name}]"

    if ctx.integer:
        _begin_integer_region(ctx, prefix, fa)
        zx = fa.x_qparams.zero_point
        acc_dtype = np.int32 if fa.engine.int32_acc_safe(fa.k) else np.int64

        def int_fn(xq_img):  # uint8 (N, C, H, W) on fa's input grid
            n, c, h, w = xq_img.shape
            oh, ow = F.conv_output_size(h, w, kh, kw, stride, pad)
            with _TRACE.span("serve.int_gather", cat="serve"):
                # Padding with Z_x is bit-identical to padding the float
                # tensor with 0 and quantizing (Q(0) == Z).
                cols = F.im2col(xq_img, kh, kw, stride, pad, pad_value=zx)
                xq = np.ascontiguousarray(
                    cols.transpose(1, 0, 2).reshape(fa.k, n * oh * ow),
                    dtype=np.int32,
                )
                acc = fa.gather_int(xq, acc_dtype)
            return (
                acc.reshape(fa.m, n, oh * ow)
                .transpose(1, 0, 2)
                .reshape(n, fa.m, oh, ow)
            )

        ctx.ops.append(
            PlanOp(
                name, "lutgemm_int", int_fn, "uint8", "int64", params=fa,
                # Geometry the fusion pass needs to rebuild this gather
                # fused with its requant (the closure hides it).
                meta={
                    "spatial": True, "kh": kh, "kw": kw, "stride": stride,
                    "pad": pad, "zx": zx, "acc_dtype": acc_dtype,
                },
            )
        )
        ctx.open_region(name, fa, spatial=True)
        return

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kh, kw, stride, pad)
        cols = F.im2col(x, kh, kw, stride, pad)
        return fa.apply(cols).reshape(n, fa.m, oh, ow)

    ctx.append_float(PlanOp(name, "lutgemm", fn, params=fa))


@register_compiler(ApproxLinear)
def _compile_approx_linear(module, ctx, prefix):
    fa = module.frozen_affine(private_engine=ctx.private_engines)
    in_features = module.in_features
    name = f"{prefix}approx_linear[{module.multiplier.name}]"

    if ctx.integer:
        _begin_integer_region(ctx, prefix, fa)
        acc_dtype = np.int32 if fa.engine.int32_acc_safe(fa.k) else np.int64

        def int_fn(xq2):  # uint8 (N, K) on fa's input grid
            with _TRACE.span("serve.int_gather", cat="serve"):
                xq = np.ascontiguousarray(xq2.T, dtype=np.int32)
                acc = fa.gather_int(xq, acc_dtype)
            return np.ascontiguousarray(acc.T)  # (N, M) int64

        ctx.ops.append(
            PlanOp(
                name, "lutgemm_int", int_fn, "uint8", "int64", params=fa,
                meta={"spatial": False, "acc_dtype": acc_dtype},
            )
        )
        ctx.open_region(name, fa, spatial=False)
        return

    def fn(x):
        n = x.shape[0]
        cols = x.reshape(n, in_features, 1)
        return fa.apply(cols).reshape(n, fa.m)

    ctx.append_float(PlanOp(name, "lutgemm", fn, params=fa))


def _compile_residual(module, ctx, prefix, main_attrs):
    """Shared handler for residual blocks: main path + shortcut + relu.

    Both sub-plans are compiled as self-contained float-in/float-out op
    lists (integer regions inside them close before the join), because the
    residual add needs both branches on the float grid.
    """
    main_ctx = _CompileCtx(ctx.private_engines, ctx.integer)
    for attr, with_relu in main_attrs:
        _compile_into(getattr(module, attr), main_ctx, f"{prefix}{attr}.")
        if with_relu:
            main_ctx.emit_relu(f"{prefix}{attr}.relu")
    main_ctx.finalize()
    main = _strip_removed(main_ctx.ops)
    short = _subplan(module.shortcut, f"{prefix}shortcut.", ctx)

    def fn(x):
        out = _run_ops(main, x) + _run_ops(short, x)
        return out * (out > 0)

    ctx.append_float(PlanOp(f"{prefix}residual", "block", fn))


def _compile_separable(module, ctx, prefix):
    for attr in ("depthwise", "bn1"):
        _compile_into(getattr(module, attr), ctx, f"{prefix}{attr}.")
    ctx.emit_relu(f"{prefix}relu1")
    for attr in ("pointwise", "bn2"):
        _compile_into(getattr(module, attr), ctx, f"{prefix}{attr}.")
    ctx.emit_relu(f"{prefix}relu2")


def _register_model_blocks() -> None:
    """Handlers for model-zoo blocks whose forward is not child-order."""
    from repro.models.mobilenet import SeparableBlock
    from repro.models.resnet import BasicBlock, Bottleneck

    _COMPILERS[SeparableBlock] = _compile_separable
    _COMPILERS[BasicBlock] = lambda m, ctx, p: _compile_residual(
        m, ctx, p,
        [("conv1", False), ("bn1", True), ("conv2", False), ("bn2", False)],
    )
    _COMPILERS[Bottleneck] = lambda m, ctx, p: _compile_residual(
        m, ctx, p,
        [("conv1", False), ("bn1", True), ("conv2", False), ("bn2", True),
         ("conv3", False), ("bn3", False)],
    )


_register_model_blocks()


# ----------------------------------------------------------------------
def compile_plan(
    model: Module,
    example_input: np.ndarray | None = None,
    private_engines: bool = False,
    arithmetic: str = "float",
    fuse: bool | None = None,
) -> InferencePlan:
    """Compile ``model`` into a tape-free :class:`InferencePlan`.

    Approximate layers must have frozen quantization (calibrated + frozen,
    or restored from a checkpoint).  The plan snapshots all weights and
    quantization state: recompile after any parameter update.

    Args:
        model: The (frozen) model to compile.
        example_input: Optional batch; when given, the compiled plan is run
            on it and verified bit-identical against the eval-mode training
            graph (raises :class:`ServeError` on any mismatch).
        private_engines: Give each approximate op its own forward-only
            LUT-GEMM engine.  Required when multiple threads run plans
            concurrently (the shared engine's scratch buffers are not
            thread-safe); costs one extra engine per approximate layer.
        arithmetic: ``"float"`` replicates the eval-mode float graph
            bit-for-bit; ``"int"`` lowers runs of approximate layers to the
            fixed-point integer core (see the module docstring).  Integer
            plans produce the same final outputs (exact dequant; the only
            approximation is the ``~2**-shift`` fixed-point residual of
            each internal requantization, below one output quantum).
        fuse: Run :func:`fuse_integer_plan` on the compiled plan, merging
            ``lutgemm_int -> requant [-> relu]`` runs into single
            ``fused_int`` ops (bit-identical, faster).  Default ``None``
            fuses exactly when ``arithmetic == "int"``; pass ``False``
            for the unfused op-per-step plan (debugging, benchmarking
            the fusion itself).
    """
    if arithmetic not in ("float", "int"):
        raise ServeError(
            f"unknown arithmetic {arithmetic!r} (expected 'float' or 'int')"
        )
    ctx = _CompileCtx(private_engines, arithmetic == "int")
    _compile_into(model, ctx, "")
    ctx.finalize()
    ops = _strip_removed(ctx.ops)
    if not ops:
        raise ServeError("model compiled to an empty plan")
    plan = InferencePlan(
        ops, model_name=type(model).__name__, arithmetic=arithmetic
    )
    if fuse is None:
        fuse = arithmetic == "int"
    if fuse:
        fuse_integer_plan(plan)
    if example_input is not None:
        verify_plan(plan, model, example_input)
    return plan


def verify_plan(
    plan: InferencePlan, model: Module, x: np.ndarray
) -> np.ndarray:
    """Assert ``plan`` matches the eval-mode training graph on ``x``.

    Returns the (shared) output array on success.  Raises
    :class:`PlanShapeError` (naming the producing op and both shapes) when
    the output shapes disagree -- previously this surfaced as a silent
    ``max |delta| = nan`` -- and :class:`ServeError` with the worst
    absolute deviation on a value mismatch.
    """
    from repro.autograd.tensor import Tensor, no_grad

    x = np.asarray(x, dtype=np.float64)
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            ref = model(Tensor(x)).data
    finally:
        if was_training:
            model.train()
    got = np.asarray(x, dtype=np.float64)
    last_name = "<input>"
    for op in plan.ops:
        got = op.fn(got)
        last_name = op.name
    if ref.shape != got.shape:
        raise PlanShapeError(
            op_name=last_name,
            ref_shape=ref.shape,
            plan_shape=got.shape,
            model=plan.model_name,
        )
    if not np.array_equal(ref, got):
        diff = float(np.max(np.abs(ref - got)))
        raise ServeError(
            f"compiled plan diverges from the training graph: "
            f"max |delta| = {diff:.3e}"
        )
    return got
