"""Inference plan compiler: Module graph -> tape-free op list.

:func:`compile_plan` walks a (calibrated, frozen) model and emits an
:class:`InferencePlan`: an ordered list of closures over raw numpy arrays.
No :class:`~repro.autograd.tensor.Tensor` tape is recorded, no gradient
LUTs are touched, and every input-independent quantity (quantized weights,
Eq. 8 zero-point corrections, BN eval-mode scale/shift) is precomputed once
at compile time via :class:`repro.nn.approx.FrozenAffine`.

Every op replicates the eval-mode float operations of the training graph in
the same order, so plan outputs are **bit-identical** to
``model.eval()(Tensor(x)).data`` -- the property the serve tests and
``benchmarks/bench_serve.py`` assert.

Supported modules: all :mod:`repro.nn.layers` leaves, the approximate
layers, and the model-zoo blocks (residual ``BasicBlock``/``Bottleneck``,
MobileNet ``SeparableBlock``).  Composite modules without a registered
handler are compiled by walking their children in definition order (correct
for every linear-pipeline model in :mod:`repro.models`); pass
``example_input`` to verify the compiled plan against the training graph
when compiling an architecture the compiler has not seen before.
"""

from __future__ import annotations

from typing import Callable

import numpy as np
from numpy.lib.stride_tricks import as_strided

from repro.errors import ServeError
from repro.nn import functional as F
from repro.nn.approx import ApproxConv2d, ApproxLinear
from repro.nn.layers import (
    AvgPool2d,
    BatchNorm2d,
    Conv2d,
    DepthwiseConv2d,
    Dropout,
    Flatten,
    GlobalAvgPool2d,
    Identity,
    Linear,
    MaxPool2d,
    ReLU,
    Sequential,
)
from repro.nn.module import Module


class PlanOp:
    """One compiled step: a named closure ``(ndarray) -> ndarray``."""

    __slots__ = ("name", "kind", "fn")

    def __init__(self, name: str, kind: str, fn: Callable[[np.ndarray], np.ndarray]):
        self.name = name
        self.kind = kind
        self.fn = fn

    def __repr__(self) -> str:
        return f"PlanOp({self.name!r}, kind={self.kind!r})"


class InferencePlan:
    """An ordered, tape-free op list compiled from a frozen model."""

    def __init__(self, ops: list[PlanOp], model_name: str = ""):
        self.ops = ops
        self.model_name = model_name

    def run(self, x: np.ndarray) -> np.ndarray:
        """Execute the plan on a batch; returns the output array."""
        out = np.asarray(x, dtype=np.float64)
        for op in self.ops:
            out = op.fn(out)
        return out

    __call__ = run

    @property
    def lutgemm_ops(self) -> int:
        """Number of LUT-GEMM (approximate) ops in the plan."""
        return sum(1 for op in self.ops if op.kind == "lutgemm")

    def describe(self) -> str:
        """Numbered op listing for logs and ``repro serve`` startup."""
        header = f"InferencePlan({self.model_name or 'model'}): " \
                 f"{len(self.ops)} ops, {self.lutgemm_ops} LUT-GEMM"
        lines = [header] + [
            f"  {i:3d}. [{op.kind}] {op.name}" for i, op in enumerate(self.ops)
        ]
        return "\n".join(lines)


# ----------------------------------------------------------------------
# Per-module compilation handlers.
_COMPILERS: dict[type, Callable] = {}


def register_compiler(module_type: type):
    """Register a compile handler for ``module_type`` (extension point)."""

    def deco(fn):
        _COMPILERS[module_type] = fn
        return fn

    return deco


def _compile_into(
    module: Module, ops: list[PlanOp], prefix: str, private_engines: bool
) -> None:
    for klass in type(module).__mro__:
        handler = _COMPILERS.get(klass)
        if handler is not None:
            handler(module, ops, prefix, private_engines)
            return
    # Composite fallback: children execute in definition order.  Every
    # linear-pipeline model (LeNet, VGG, MobileNet, ResNet top level)
    # satisfies this; blocks with non-linear dataflow need a registered
    # handler (see BasicBlock/Bottleneck below).
    children = list(module._children())
    if not children:
        raise ServeError(
            f"cannot compile {type(module).__name__} at {prefix or '<root>'}: "
            "no handler registered and no children to recurse into"
        )
    for name, child in children:
        _compile_into(child, ops, f"{prefix}{name}.", private_engines)


def _subplan(module: Module, prefix: str, private_engines: bool) -> list[PlanOp]:
    ops: list[PlanOp] = []
    _compile_into(module, ops, prefix, private_engines)
    return ops


def _run_ops(ops: list[PlanOp], x: np.ndarray) -> np.ndarray:
    for op in ops:
        x = op.fn(x)
    return x


@register_compiler(Sequential)
def _compile_sequential(module, ops, prefix, private_engines):
    for i, step in enumerate(module.steps):
        _compile_into(step, ops, f"{prefix}{i}.", private_engines)


@register_compiler(Identity)
def _compile_identity(module, ops, prefix, private_engines):
    pass  # no-op


@register_compiler(Dropout)
def _compile_dropout(module, ops, prefix, private_engines):
    pass  # identity in eval mode


@register_compiler(ReLU)
def _compile_relu(module, ops, prefix, private_engines):
    # Matches Tensor.relu: multiply by the bool mask.
    ops.append(PlanOp(f"{prefix}relu", "act", lambda x: x * (x > 0)))


@register_compiler(Flatten)
def _compile_flatten(module, ops, prefix, private_engines):
    ops.append(
        PlanOp(f"{prefix}flatten", "shape", lambda x: x.reshape((x.shape[0], -1)))
    )


def _pool_patches(x, kernel, stride, oh, ow):
    n, c = x.shape[:2]
    sn, sc, sh, sw = x.strides
    return as_strided(
        x,
        shape=(n, c, oh, ow, kernel, kernel),
        strides=(sn, sc, sh * stride, sw * stride, sh, sw),
        writeable=False,
    )


@register_compiler(MaxPool2d)
def _compile_maxpool(module, ops, prefix, private_engines):
    kernel = module.kernel_size
    stride = module.stride or kernel

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kernel, kernel, stride, 0)
        # The selected value equals the tape's argmax/take_along_axis pick,
        # so a direct windowed max is bit-identical (and much cheaper).
        return _pool_patches(x, kernel, stride, oh, ow).max(axis=(-1, -2))

    ops.append(PlanOp(f"{prefix}maxpool{kernel}", "pool", fn))


@register_compiler(AvgPool2d)
def _compile_avgpool(module, ops, prefix, private_engines):
    kernel = module.kernel_size
    stride = module.stride or kernel

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kernel, kernel, stride, 0)
        return _pool_patches(x, kernel, stride, oh, ow).mean(axis=(-1, -2))

    ops.append(PlanOp(f"{prefix}avgpool{kernel}", "pool", fn))


@register_compiler(GlobalAvgPool2d)
def _compile_gap(module, ops, prefix, private_engines):
    # Matches Tensor.mean: sum then multiply by the reciprocal count.
    def fn(x):
        return x.sum(axis=(2, 3)) * (1.0 / float(x.shape[2] * x.shape[3]))

    ops.append(PlanOp(f"{prefix}gap", "pool", fn))


@register_compiler(BatchNorm2d)
def _compile_batchnorm(module, ops, prefix, private_engines):
    # Eval-mode BN with running statistics, frozen at compile time.
    mean = module.running_mean.copy().reshape(1, -1, 1, 1)
    inv_std = (1.0 / np.sqrt(module.running_var + module.eps)).reshape(1, -1, 1, 1)
    gamma = module.gamma.data.copy().reshape(1, -1, 1, 1)
    beta = module.beta.data.copy().reshape(1, -1, 1, 1)

    def fn(x):
        return ((x - mean) * inv_std) * gamma + beta

    ops.append(PlanOp(f"{prefix}bn", "float", fn))


@register_compiler(Conv2d)
def _compile_conv2d(module, ops, prefix, private_engines):
    kh = kw = module.kernel_size
    stride, pad = module.stride, module.padding
    oc = module.out_channels
    wmat = module.weight.data.copy().reshape(oc, -1)
    bias = None if module.bias is None else module.bias.data.copy()

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kh, kw, stride, pad)
        cols = F.im2col(x, kh, kw, stride, pad)
        out = np.matmul(wmat, cols)
        if bias is not None:
            out = out + bias.reshape(1, oc, 1)
        return out.reshape(n, oc, oh, ow)

    ops.append(PlanOp(f"{prefix}conv{kh}x{kw}", "float", fn))


@register_compiler(DepthwiseConv2d)
def _compile_depthwise(module, ops, prefix, private_engines):
    kh = kw = module.kernel_size
    stride, pad = module.stride, module.padding
    ch = module.channels
    wmat = module.weight.data.copy().reshape(ch, kh * kw)
    bias = None if module.bias is None else module.bias.data.copy()

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kh, kw, stride, pad)
        cols = F.im2col(x, kh, kw, stride, pad).reshape(n, c, kh * kw, oh * ow)
        out = np.einsum("cj,ncjl->ncl", wmat, cols)
        if bias is not None:
            out = out + bias.reshape(1, c, 1)
        return out.reshape(n, c, oh, ow)

    ops.append(PlanOp(f"{prefix}dwconv{kh}x{kw}", "float", fn))


@register_compiler(Linear)
def _compile_linear(module, ops, prefix, private_engines):
    weight = module.weight.data.copy()
    bias = None if module.bias is None else module.bias.data.copy()

    def fn(x):
        out = x @ weight.T
        if bias is not None:
            out = out + bias
        return out

    ops.append(PlanOp(f"{prefix}linear", "float", fn))


@register_compiler(ApproxConv2d)
def _compile_approx_conv(module, ops, prefix, private_engines):
    fa = module.frozen_affine(private_engine=private_engines)
    kh = kw = module.kernel_size
    stride, pad = module.stride, module.padding

    def fn(x):
        n, c, h, w = x.shape
        oh, ow = F.conv_output_size(h, w, kh, kw, stride, pad)
        cols = F.im2col(x, kh, kw, stride, pad)
        return fa.apply(cols).reshape(n, fa.m, oh, ow)

    ops.append(
        PlanOp(
            f"{prefix}approx_conv{kh}x{kw}[{module.multiplier.name}]",
            "lutgemm",
            fn,
        )
    )


@register_compiler(ApproxLinear)
def _compile_approx_linear(module, ops, prefix, private_engines):
    fa = module.frozen_affine(private_engine=private_engines)
    in_features = module.in_features

    def fn(x):
        n = x.shape[0]
        cols = x.reshape(n, in_features, 1)
        return fa.apply(cols).reshape(n, fa.m)

    ops.append(
        PlanOp(
            f"{prefix}approx_linear[{module.multiplier.name}]", "lutgemm", fn
        )
    )


def _compile_residual(module, ops, prefix, private_engines, main_attrs):
    """Shared handler for residual blocks: main path + shortcut + relu."""
    main: list[PlanOp] = []
    for attr, with_relu in main_attrs:
        _compile_into(getattr(module, attr), main, f"{prefix}{attr}.", private_engines)
        if with_relu:
            main.append(PlanOp(f"{prefix}{attr}.relu", "act", lambda x: x * (x > 0)))
    short = _subplan(module.shortcut, f"{prefix}shortcut.", private_engines)

    def fn(x):
        out = _run_ops(main, x) + _run_ops(short, x)
        return out * (out > 0)

    ops.append(PlanOp(f"{prefix}residual", "block", fn))


def _compile_separable(module, ops, prefix, private_engines):
    for attr in ("depthwise", "bn1"):
        _compile_into(getattr(module, attr), ops, f"{prefix}{attr}.", private_engines)
    ops.append(PlanOp(f"{prefix}relu1", "act", lambda x: x * (x > 0)))
    for attr in ("pointwise", "bn2"):
        _compile_into(getattr(module, attr), ops, f"{prefix}{attr}.", private_engines)
    ops.append(PlanOp(f"{prefix}relu2", "act", lambda x: x * (x > 0)))


def _register_model_blocks() -> None:
    """Handlers for model-zoo blocks whose forward is not child-order."""
    from repro.models.mobilenet import SeparableBlock
    from repro.models.resnet import BasicBlock, Bottleneck

    _COMPILERS[SeparableBlock] = _compile_separable
    _COMPILERS[BasicBlock] = lambda m, o, p, pe: _compile_residual(
        m, o, p, pe, [("conv1", False), ("bn1", True), ("conv2", False), ("bn2", False)]
    )
    _COMPILERS[Bottleneck] = lambda m, o, p, pe: _compile_residual(
        m, o, p, pe,
        [("conv1", False), ("bn1", True), ("conv2", False), ("bn2", True),
         ("conv3", False), ("bn3", False)],
    )


_register_model_blocks()


# ----------------------------------------------------------------------
def compile_plan(
    model: Module,
    example_input: np.ndarray | None = None,
    private_engines: bool = False,
) -> InferencePlan:
    """Compile ``model`` into a tape-free :class:`InferencePlan`.

    Approximate layers must have frozen quantization (calibrated + frozen,
    or restored from a checkpoint).  The plan snapshots all weights and
    quantization state: recompile after any parameter update.

    Args:
        model: The (frozen) model to compile.
        example_input: Optional batch; when given, the compiled plan is run
            on it and verified bit-identical against the eval-mode training
            graph (raises :class:`ServeError` on any mismatch).
        private_engines: Give each approximate op its own forward-only
            LUT-GEMM engine.  Required when multiple threads run plans
            concurrently (the shared engine's scratch buffers are not
            thread-safe); costs one extra engine per approximate layer.
    """
    ops: list[PlanOp] = []
    _compile_into(model, ops, "", private_engines)
    if not ops:
        raise ServeError("model compiled to an empty plan")
    plan = InferencePlan(ops, model_name=type(model).__name__)
    if example_input is not None:
        verify_plan(plan, model, example_input)
    return plan


def verify_plan(
    plan: InferencePlan, model: Module, x: np.ndarray
) -> np.ndarray:
    """Assert ``plan`` matches the eval-mode training graph on ``x``.

    Returns the (shared) output array on success; raises
    :class:`ServeError` with the worst absolute deviation otherwise.
    """
    from repro.autograd.tensor import Tensor, no_grad

    x = np.asarray(x, dtype=np.float64)
    was_training = model.training
    model.eval()
    try:
        with no_grad():
            ref = model(Tensor(x)).data
    finally:
        if was_training:
            model.train()
    got = plan.run(x)
    if not np.array_equal(ref, got):
        diff = float(np.max(np.abs(ref - got))) if ref.shape == got.shape else float("nan")
        raise ServeError(
            f"compiled plan diverges from the training graph: shapes "
            f"{got.shape} vs {ref.shape}, max |delta| = {diff:.3e}"
        )
    return got
