"""Serving metrics: counters, latency histograms, batch-size distribution.

One :class:`ServeMetrics` instance is shared by the scheduler, the worker
pool, and the HTTP endpoint.  Everything is exportable two ways:

- :meth:`ServeMetrics.as_dict` -- a plain nested dict (JSON-friendly, what
  ``GET /metrics`` returns), and
- :meth:`ServeMetrics.format_report` -- a human-readable text report.

Event counters are backed by a :class:`repro.obs.telemetry.MetricRegistry`
family, so serving counters and the training-health telemetry share one
metric model and one Prometheus export path; :meth:`as_dict` additionally
embeds a snapshot of the process-wide telemetry registry under
``"telemetry"`` so the health gauges ride along on ``GET /metrics``.

Latency histograms keep a bounded reservoir of recent samples plus exact
count/sum/min/max, so p50/p95/p99 stay cheap at any traffic volume.  Engine
cache hit statistics are pulled live from
:func:`repro.core.lutgemm.engine_cache_stats`.
"""

from __future__ import annotations

import threading
from typing import Callable

import numpy as np

from repro.obs.telemetry import MetricRegistry, get_registry

#: Samples retained per latency histogram (newest overwrite oldest).
RESERVOIR_SIZE = 4096

#: Buckets (milliseconds) for the submit->dispatch queue-wait histogram.
QUEUE_WAIT_MS_BUCKETS = (0.1, 0.25, 0.5, 1.0, 2.5, 5.0, 10.0, 25.0,
                         50.0, 100.0, 250.0, 1000.0)


class LatencyHistogram:
    """Streaming latency statistics with percentile estimates.

    Keeps a fixed-size ring buffer of the most recent observations (so the
    percentiles track current behavior, not the whole process lifetime)
    alongside exact cumulative count/sum/min/max.
    """

    def __init__(self, reservoir_size: int = RESERVOIR_SIZE):
        self._samples = np.empty(reservoir_size, dtype=np.float64)
        self._next = 0
        self._filled = 0
        self.count = 0
        self.total = 0.0
        self.min = float("inf")
        self.max = 0.0

    def observe(self, value_ms: float) -> None:
        self._samples[self._next] = value_ms
        self._next = (self._next + 1) % self._samples.size
        self._filled = min(self._filled + 1, self._samples.size)
        self.count += 1
        self.total += value_ms
        self.min = min(self.min, value_ms)
        self.max = max(self.max, value_ms)

    def percentiles(self, qs) -> list[float]:
        """Several percentiles from one sort of the reservoir.

        NaN, not 0.0, on zero samples: a 0ms percentile reads as "very
        fast", NaN reads as "no data" (and survives the JSON path --
        json.dumps emits NaN by default).
        """
        if self._filled == 0:
            return [float("nan")] * len(qs)
        # One np.percentile call sorts the reservoir once and interpolates
        # every requested quantile from it (as_dict used to pay three
        # full sorts for p50/p95/p99).
        vals = np.percentile(self._samples[: self._filled], list(qs))
        return [float(v) for v in np.atleast_1d(vals)]

    def percentile(self, q: float) -> float:
        return self.percentiles((q,))[0]

    def as_dict(self) -> dict:
        empty = float("nan")
        p50, p95, p99 = self.percentiles((50, 95, 99))
        return {
            "count": self.count,
            "mean_ms": self.total / self.count if self.count else empty,
            "min_ms": self.min if self.count else empty,
            "max_ms": self.max if self.count else empty,
            "p50_ms": p50,
            "p95_ms": p95,
            "p99_ms": p99,
        }


class ServeMetrics:
    """Thread-safe metrics registry for one serving deployment.

    Args:
        registry: Optional :class:`MetricRegistry` to host the event
            counters; each instance gets a private registry by default so
            independent deployments (and tests) never share counter state.
    """

    def __init__(self, registry: MetricRegistry | None = None):
        self._lock = threading.Lock()
        self.registry = registry or MetricRegistry()
        self._events = self.registry.counter(
            "repro_serve_counter",
            "Serving/sweep event counters.",
            labelnames=("name",),
        )
        self._queue_wait = self.registry.histogram(
            "repro_serve_queue_wait_ms",
            "Submit->dispatch queue wait per request, milliseconds.",
            buckets=QUEUE_WAIT_MS_BUCKETS,
        )
        self._latencies: dict[str, LatencyHistogram] = {}
        self._batch_sizes: dict[int, int] = {}
        self._gauges: dict[str, Callable[[], float]] = {}
        self._plan_info: dict = {}

    # ------------------------------------------------------------------
    def inc(self, name: str, n: int = 1) -> None:
        """Increment counter ``name`` by ``n``."""
        self._events.inc(n, name=name)

    def counter(self, name: str) -> int:
        return self._events.value(name=name)

    def observe_latency(self, name: str, value_ms: float) -> None:
        """Record one latency sample (milliseconds) in histogram ``name``."""
        with self._lock:
            hist = self._latencies.get(name)
            if hist is None:
                hist = self._latencies[name] = LatencyHistogram()
            hist.observe(value_ms)

    def observe_queue_wait(self, value_ms: float) -> None:
        """Record one submit->dispatch queue wait (milliseconds).

        Lands in both export paths: the ``queue_wait_ms`` reservoir
        (p50/p95/p99 in the JSON snapshot) and the bucketed
        ``repro_serve_queue_wait_ms`` registry histogram (Prometheus).
        """
        self.observe_latency("queue_wait_ms", value_ms)
        self._queue_wait.observe(value_ms)

    def observe_batch(self, size: int) -> None:
        """Record the size of one executed micro-batch."""
        with self._lock:
            self._batch_sizes[size] = self._batch_sizes.get(size, 0) + 1
        self._events.inc(name="batches_total")

    def register_gauge(self, name: str, fn: Callable[[], float]) -> None:
        """Register a live-sampled gauge (e.g. current queue depth)."""
        with self._lock:
            self._gauges[name] = fn

    def set_plan_info(self, info: dict) -> None:
        """Record the compiled plan's op summary (see
        :meth:`repro.serve.plan.InferencePlan.op_summary`), so ``GET
        /metrics`` shows which arithmetic mode and op/dtype mix is live."""
        with self._lock:
            self._plan_info = dict(info)

    @property
    def batch_size_histogram(self) -> dict[int, int]:
        with self._lock:
            return dict(self._batch_sizes)

    # ------------------------------------------------------------------
    def as_dict(self) -> dict:
        """Snapshot every metric as a plain (JSON-serializable) dict."""
        from repro.core.lutgemm import engine_cache_stats
        from repro.obs.trace import get_tracer

        counters = {
            key[0]: value for key, value in self._events.items()
        }
        with self._lock:
            latencies = {k: h.as_dict() for k, h in self._latencies.items()}
            batch_sizes = {str(k): v for k, v in sorted(self._batch_sizes.items())}
            gauge_fns = list(self._gauges.items())
            plan_info = dict(self._plan_info)
        # Gauge callbacks run outside the lock: they sample live objects
        # (queue depth, worker count) that take their own locks, and a
        # slow or re-entrant callback must never stall metric writers.
        gauges = {name: fn() for name, fn in gauge_fns}
        cache = engine_cache_stats()
        tracer = get_tracer()
        return {
            "counters": counters,
            "plan": plan_info,
            "latency": latencies,
            "batch_size_histogram": batch_sizes,
            "gauges": gauges,
            "engine_cache": {
                "entries": cache.entries,
                "hits": cache.hits,
                "misses": cache.misses,
            },
            # Tracer state rides along so an operator can see from
            # GET /metrics whether tracing is on and whether the span
            # buffer overflowed (spans past max_spans drop silently
            # otherwise).
            "tracer": {
                "enabled": tracer.enabled,
                "max_spans": tracer.max_spans,
                "spans": tracer.span_count,
                "dropped_spans": tracer.dropped,
            },
            # Process-wide telemetry families (training-health gauges,
            # anomaly counters, ...) so GET /metrics exposes them in JSON.
            "telemetry": get_registry().as_dict(),
        }

    def prometheus_text(self) -> str:
        """Prometheus-style text exposition of the current snapshot.

        Unifies these serving metrics with the :mod:`repro.obs` tracer's
        counters/span aggregates and the process-wide telemetry registry
        (what ``GET /metrics?format=text`` returns).
        """
        from repro.obs.export import prometheus_text
        from repro.obs.trace import get_tracer

        return prometheus_text(self, get_tracer(), registry=get_registry())

    def format_report(self) -> str:
        """Multi-line human-readable report of the current snapshot."""
        snap = self.as_dict()
        lines = ["serve metrics"]
        if snap["plan"]:
            plan = snap["plan"]
            lines.append(
                f"  plan: {plan.get('model', '?')} "
                f"[{plan.get('arithmetic', '?')}] {plan.get('ops', 0)} ops, "
                f"{plan.get('lutgemm_ops', 0)} LUT-GEMM, "
                f"integer core: {plan.get('integer_only_core', False)}"
            )
        for name, value in sorted(snap["counters"].items()):
            lines.append(f"  {name}: {value}")
        for name, value in sorted(snap["gauges"].items()):
            lines.append(f"  {name}: {value}")
        for name, hist in sorted(snap["latency"].items()):
            lines.append(
                f"  {name}: n={hist['count']} mean={hist['mean_ms']:.3f}ms "
                f"p50={hist['p50_ms']:.3f}ms p95={hist['p95_ms']:.3f}ms "
                f"p99={hist['p99_ms']:.3f}ms max={hist['max_ms']:.3f}ms"
            )
        if snap["batch_size_histogram"]:
            dist = " ".join(
                f"{size}x{count}"
                for size, count in snap["batch_size_histogram"].items()
            )
            lines.append(f"  batch sizes: {dist}")
        cache = snap["engine_cache"]
        lines.append(
            f"  engine cache: {cache['entries']} engine(s), "
            f"{cache['hits']} hit(s), {cache['misses']} miss(es)"
        )
        tracer = snap["tracer"]
        if tracer["enabled"] or tracer["dropped_spans"]:
            lines.append(
                f"  tracer: enabled={tracer['enabled']} "
                f"spans={tracer['spans']}/{tracer['max_spans']} "
                f"dropped={tracer['dropped_spans']}"
            )
        return "\n".join(lines)
