"""Worker-process supervision for the sharded serving subsystem.

:class:`Supervisor` owns the N forked :mod:`repro.serve.shard` worker
processes and nothing else -- spawning, liveness, and respawn policy --
so the router can treat the worker set as a self-healing pool:

- **Spawn.**  Workers are started with the ``fork`` start method: they
  inherit the parent's compiled plan (closures and all -- nothing is
  pickled) plus the already-mapped shared-memory LUT segments, so a
  worker is serving-ready the moment it comes up.
- **Heartbeats.**  Each worker writes ``time.monotonic()`` into its slot
  of a small shared-memory float64 slab on a fixed interval (a
  :class:`repro.retrain.lifecycle.Heartbeat` thread -- the same primitive
  the sweep runner uses).  ``time.monotonic`` is comparable across
  processes on Linux (CLOCK_MONOTONIC is system-wide), so the parent
  detects a *hung* worker (alive but not beating) as well as a dead one.
- **Crash detection.**  The router waits on process sentinels; the
  supervisor classifies deaths and schedules respawns with the sweep
  runner's capped exponential backoff
  (:func:`repro.retrain.lifecycle.capped_backoff`).  Respawns are
  *scheduled*, not slept in line, so one crashing worker never stalls
  result collection for the others; a worker that keeps dying young
  exhausts ``max_respawns`` and is marked permanently down.
"""

from __future__ import annotations

import os
import time
from multiprocessing import get_context
from typing import Callable

import numpy as np

from repro.errors import ServeError
from repro.retrain.lifecycle import capped_backoff
from repro.serve.shm import MutableSlab

__all__ = ["Supervisor", "WorkerHandle"]

#: A worker alive longer than this at death is "old": its respawn attempt
#: counter resets, so long-lived workers always restart promptly and only
#: crash-looping ones walk up the backoff schedule.
ATTEMPT_RESET_AFTER_S = 30.0


class WorkerHandle:
    """One live (or just-dead) worker process, as the supervisor sees it."""

    __slots__ = ("index", "process", "conn", "started_at", "attempt")

    def __init__(self, index: int, process, conn, attempt: int):
        self.index = index
        self.process = process
        self.conn = conn  # parent end of the duplex pipe
        self.started_at = time.monotonic()
        self.attempt = attempt  # respawn generation (0 = original)

    @property
    def pid(self) -> int | None:
        return self.process.pid

    @property
    def sentinel(self):
        return self.process.sentinel

    def is_alive(self) -> bool:
        return self.process.is_alive()

    def __repr__(self) -> str:
        state = "alive" if self.is_alive() else "dead"
        return f"WorkerHandle(#{self.index} pid={self.pid} {state})"


class Supervisor:
    """Spawns, watches, and respawns the sharded serving workers.

    Args:
        worker_fn: Child entry point
            ``worker_fn(conn, index, slab, heartbeat_s)``; runs in the
            forked process.  ``slab`` is the writable heartbeat array.
        num_workers: Worker slot count (fixed; slots are respawned in
            place).
        heartbeat_s: Interval workers write their slot at (<= 0 disables
            heartbeat/staleness tracking entirely).
        stale_after_s: Age after which a slot counts as hung; defaults to
            ``10 * heartbeat_s``.
        backoff_base / backoff_cap: The sweep runner's capped-exponential
            respawn delay parameters.
        max_respawns: Consecutive young-death respawns per slot before it
            is marked permanently down.
        on_event: Optional callback receiving lifecycle dicts
            (``{"event": "worker_spawned" | "worker_respawn_scheduled" |
            "worker_down", ...}``) for logs/telemetry.
    """

    def __init__(
        self,
        worker_fn: Callable,
        num_workers: int,
        heartbeat_s: float = 0.5,
        stale_after_s: float | None = None,
        backoff_base: float = 0.05,
        backoff_cap: float = 2.0,
        max_respawns: int = 5,
        on_event: Callable[[dict], None] | None = None,
    ):
        if num_workers < 1:
            raise ServeError(f"num_workers must be >= 1, got {num_workers}")
        try:
            self._ctx = get_context("fork")
        except ValueError as exc:  # pragma: no cover - non-POSIX hosts
            raise ServeError(
                "sharded serving requires the fork start method "
                "(workers inherit the compiled plan and shm mappings)"
            ) from exc
        self.worker_fn = worker_fn
        self.num_workers = num_workers
        self.heartbeat_s = heartbeat_s
        self.stale_after_s = (
            stale_after_s if stale_after_s is not None
            else (10.0 * heartbeat_s if heartbeat_s > 0 else 0.0)
        )
        self.backoff_base = backoff_base
        self.backoff_cap = backoff_cap
        self.max_respawns = max_respawns
        self.on_event = on_event
        self._owner_pid = os.getpid()
        self._handles: list[WorkerHandle | None] = [None] * num_workers
        self._down: set[int] = set()  # permanently-down slots
        self._pending: dict[int, tuple[float, int]] = {}  # idx -> (due, att)
        self._respawns_total = 0
        self._stopping = False
        # Heartbeat slab: one float64 monotonic timestamp per slot,
        # inherited writable over fork.  Unrelated to the read-only
        # SharedLutStore segments (those carry immutable tables).
        self._hb_shm = MutableSlab(
            f"repro-hb-{os.getpid()}", size=max(num_workers * 8, 8)
        )
        self.hb_slab = self._hb_shm.as_array(np.float64, (num_workers,))
        self.hb_slab[:] = 0.0

    # ------------------------------------------------------------------
    def _emit(self, event: str, **fields) -> None:
        if self.on_event is not None:
            self.on_event({"event": event, **fields})

    @property
    def respawns_total(self) -> int:
        return self._respawns_total

    @property
    def heartbeat_segment(self) -> str:
        """Name of the heartbeat slab's shared-memory segment."""
        return self._hb_shm.name

    def handles(self) -> list[WorkerHandle]:
        """Current handles, dead or alive (permanently-down slots absent)."""
        return [h for h in self._handles if h is not None]

    def handle(self, index: int) -> WorkerHandle | None:
        """The current handle of slot ``index`` (None while respawning)."""
        return self._handles[index]

    def live_handles(self) -> list[WorkerHandle]:
        return [h for h in self.handles() if h.is_alive()]

    def is_down(self, index: int) -> bool:
        """Whether slot ``index`` is permanently down (respawns exhausted)."""
        return index in self._down

    def all_down(self) -> bool:
        """Every slot is permanently down (no worker will ever come back)."""
        return len(self._down) == self.num_workers

    # ------------------------------------------------------------------
    def start(self) -> "Supervisor":
        for index in range(self.num_workers):
            self._spawn(index, attempt=0)
        return self

    def _spawn(self, index: int, attempt: int) -> WorkerHandle:
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        # A fresh heartbeat "now" so the new worker isn't stale at birth.
        self.hb_slab[index] = time.monotonic()
        proc = self._ctx.Process(
            target=self.worker_fn,
            args=(child_conn, index, self.hb_slab, self.heartbeat_s),
            name=f"repro-shard-worker-{index}",
            daemon=True,
        )
        proc.start()
        child_conn.close()  # child's end lives in the child only
        handle = WorkerHandle(index, proc, parent_conn, attempt)
        self._handles[index] = handle
        self._emit(
            "worker_spawned", worker=index, pid=proc.pid, attempt=attempt
        )
        return handle

    # ------------------------------------------------------------------
    def notice_death(self, handle: WorkerHandle) -> bool:
        """Record a worker death; schedule a respawn when policy allows.

        Returns ``True`` when a respawn was scheduled, ``False`` when the
        slot is now permanently down (or the supervisor is stopping).
        Idempotent per handle: a second notice for the same generation is
        a no-op (the sentinel and an EOF on the pipe can both fire).
        """
        index = handle.index
        current = self._handles[index]
        if current is not handle or self._stopping or index in self._down:
            return False
        self._handles[index] = None
        try:
            handle.conn.close()
        except OSError:
            pass
        handle.process.join(timeout=0)
        age = time.monotonic() - handle.started_at
        attempt = 1 if age >= ATTEMPT_RESET_AFTER_S else handle.attempt + 1
        if attempt > self.max_respawns:
            self._down.add(index)
            self._emit(
                "worker_down", worker=index, pid=handle.pid,
                attempts=handle.attempt,
            )
            return False
        delay = capped_backoff(attempt, self.backoff_base, self.backoff_cap)
        self._pending[index] = (time.monotonic() + delay, attempt)
        self._respawns_total += 1
        self._emit(
            "worker_respawn_scheduled", worker=index, pid=handle.pid,
            attempt=attempt, delay_s=delay, age_s=age,
        )
        return True

    def poll_respawns(self) -> list[WorkerHandle]:
        """Spawn every scheduled respawn whose backoff delay has elapsed."""
        if self._stopping or not self._pending:
            return []
        now = time.monotonic()
        spawned = []
        for index, (due, attempt) in list(self._pending.items()):
            if now >= due:
                del self._pending[index]
                spawned.append(self._spawn(index, attempt))
        return spawned

    def next_respawn_due(self) -> float | None:
        """Seconds until the soonest scheduled respawn (None = none pending)."""
        if not self._pending:
            return None
        return max(min(due for due, _ in self._pending.values())
                   - time.monotonic(), 0.0)

    def stale_handles(self) -> list[WorkerHandle]:
        """Live workers whose heartbeat slot is older than ``stale_after_s``."""
        if self.stale_after_s <= 0:
            return []
        now = time.monotonic()
        return [
            h for h in self.live_handles()
            if now - float(self.hb_slab[h.index]) > self.stale_after_s
        ]

    def kill(self, handle: WorkerHandle) -> None:
        """SIGKILL a worker (hang handling); death flows through sentinels."""
        if handle.is_alive():
            handle.process.kill()

    # ------------------------------------------------------------------
    def stop(self, timeout: float = 10.0) -> None:
        """Stop every worker and release the heartbeat slab (idempotent)."""
        if self._stopping:
            return
        self._stopping = True
        self._pending.clear()
        deadline = time.monotonic() + timeout
        for handle in self.handles():
            try:
                handle.conn.send(("stop",))
            except (OSError, ValueError):
                pass  # already dead / pipe gone
        for handle in self.handles():
            handle.process.join(max(deadline - time.monotonic(), 0.1))
            if handle.process.is_alive():
                handle.process.kill()
                handle.process.join(1.0)
            try:
                handle.conn.close()
            except OSError:
                pass
        self._handles = [None] * self.num_workers
        self.hb_slab = None  # release the exported buffer before close()
        self._hb_shm.close()  # owner-gated unlink inside MutableSlab

    def __enter__(self) -> "Supervisor":
        return self.start()

    def __exit__(self, *exc) -> None:
        self.stop()
