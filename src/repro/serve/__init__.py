"""Compiled inference serving runtime.

Turns a trained (calibrated + frozen) approximate model into a production
inference stack, with no autograd tape and no gradient LUTs:

- :mod:`repro.serve.plan` -- compiles a model into an
  :class:`~repro.serve.plan.InferencePlan`, a flat list of numpy/LUT-GEMM
  ops that is bit-identical to the eval-mode training-graph forward.
- :mod:`repro.serve.scheduler` -- micro-batching request queue
  (:class:`~repro.serve.scheduler.MicroBatcher`) that coalesces concurrent
  single-sample requests and sheds load when full.
- :mod:`repro.serve.pool` -- :class:`~repro.serve.pool.WorkerPool` threads,
  each reusing its own compiled plan.
- :mod:`repro.serve.metrics` -- counters, latency percentiles, batch-size
  distribution, engine cache statistics.
- :mod:`repro.serve.http` -- stdlib JSON endpoint
  (``/predict``, ``/healthz``, ``/metrics``) behind ``repro serve``.
- :mod:`repro.serve.shm` / :mod:`repro.serve.shard` /
  :mod:`repro.serve.supervisor` -- sharded multi-process serving:
  :class:`~repro.serve.shm.SharedLutStore` publishes LUT tables and
  requant constants into shared memory once per host,
  :class:`~repro.serve.shard.ShardServer` routes micro-batches to N
  forked plan workers, and :class:`~repro.serve.supervisor.Supervisor`
  respawns crashed workers with capped backoff
  (``repro serve --sharded``).
"""

from repro.serve.metrics import LatencyHistogram, ServeMetrics
from repro.serve.plan import (
    InferencePlan,
    PlanOp,
    assert_integer_core,
    compile_plan,
    fuse_integer_plan,
    integer_core_report,
    register_compiler,
    verify_plan,
)
from repro.serve.scheduler import MicroBatcher, PendingRequest
from repro.serve.pool import WorkerPool
from repro.serve.http import (
    ServingHTTPServer,
    install_shutdown_handlers,
    make_server,
)
from repro.serve.shm import SharedArraySpec, SharedLutStore
from repro.serve.supervisor import Supervisor, WorkerHandle
from repro.serve.shard import ShardServer

__all__ = [
    "InferencePlan",
    "LatencyHistogram",
    "MicroBatcher",
    "PendingRequest",
    "ServeMetrics",
    "ServingHTTPServer",
    "SharedArraySpec",
    "SharedLutStore",
    "ShardServer",
    "Supervisor",
    "PlanOp",
    "WorkerHandle",
    "WorkerPool",
    "assert_integer_core",
    "compile_plan",
    "fuse_integer_plan",
    "install_shutdown_handlers",
    "integer_core_report",
    "make_server",
    "register_compiler",
    "verify_plan",
]
