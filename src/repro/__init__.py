"""AppMult-aware DNN retraining with difference-based gradient approximation.

Reproduction of C. Meng, W. Burleson, W. Qian, and G. De Micheli,
"Gradient Approximation of Approximate Multipliers for High-Accuracy Deep
Neural Network Retraining", DATE 2025.

The package is organized as a stack of substrates:

- :mod:`repro.circuits` -- gate-level netlists, exhaustive simulation,
  multiplier generators, approximate logic synthesis, hardware cost models.
- :mod:`repro.multipliers` -- the multiplier library (exact, truncated,
  EvoApprox-style behavioral stand-ins, synthesized) with exhaustive error
  metrics and a registry of every multiplier from the paper's Table I.
- :mod:`repro.core` -- the paper's contribution: moving-average smoothing of
  the AppMult function (Eq. 4) and the difference-based gradient LUTs
  (Eqs. 5-6), plus the HWS selection procedure.
- :mod:`repro.autograd` / :mod:`repro.nn` / :mod:`repro.optim` /
  :mod:`repro.models` -- a from-scratch numpy deep-learning framework with
  fake quantization (Eqs. 7-8) and approximate conv/linear layers whose
  backward pass applies Eq. 9 with LUT gradients.
- :mod:`repro.data` -- synthetic CIFAR-like datasets and loaders.
- :mod:`repro.retrain` -- the AppMult-aware retraining framework (Fig. 4).
- :mod:`repro.hw` -- hardware characterization reporting (Table I).
"""

__version__ = "1.0.0"

from repro.errors import ReproError, CircuitError, QuantizationError, ConfigError

__all__ = [
    "__version__",
    "ReproError",
    "CircuitError",
    "QuantizationError",
    "ConfigError",
]
