"""A small reverse-mode automatic differentiation engine on numpy.

Stands in for PyTorch's autograd in the paper's retraining framework: a
tape-based :class:`Tensor` with broadcasting arithmetic, matmul, reductions,
shape ops, and the hooks needed to register custom backward functions (the
approximate layers in :mod:`repro.nn.approx` use those to implement Eq. 9
with gradient LUTs).
"""

from repro.autograd.tensor import Tensor, no_grad, is_grad_enabled
from repro.autograd.gradcheck import gradcheck, numerical_gradient

__all__ = [
    "Tensor",
    "no_grad",
    "is_grad_enabled",
    "gradcheck",
    "numerical_gradient",
]
