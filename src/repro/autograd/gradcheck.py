"""Numerical gradient checking for the autodiff engine and custom layers."""

from __future__ import annotations

from typing import Callable, Sequence

import numpy as np

from repro.autograd.tensor import Tensor


def numerical_gradient(
    func: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    index: int,
    eps: float = 1e-5,
) -> np.ndarray:
    """Central-difference gradient of ``sum(func(*inputs))`` w.r.t. one input.

    Args:
        func: Function mapping :class:`Tensor` inputs to a Tensor output.
        inputs: Raw numpy input arrays.
        index: Which input to differentiate.
        eps: Finite-difference step.
    """
    base = [np.array(a, dtype=np.float64) for a in inputs]
    target = base[index]
    grad = np.zeros_like(target)
    it = np.nditer(target, flags=["multi_index"])
    while not it.finished:
        idx = it.multi_index
        orig = target[idx]
        target[idx] = orig + eps
        hi = float(func(*[Tensor(a) for a in base]).data.sum())
        target[idx] = orig - eps
        lo = float(func(*[Tensor(a) for a in base]).data.sum())
        target[idx] = orig
        grad[idx] = (hi - lo) / (2 * eps)
        it.iternext()
    return grad


def gradcheck(
    func: Callable[..., Tensor],
    inputs: Sequence[np.ndarray],
    eps: float = 1e-5,
    atol: float = 1e-4,
    rtol: float = 1e-3,
) -> bool:
    """Compare autodiff gradients of ``sum(func(...))`` against finite
    differences for every input.

    Returns True when all gradients match within tolerance; raises
    AssertionError with a diagnostic otherwise.
    """
    tensors = [
        Tensor(np.array(a, dtype=np.float64), requires_grad=True)
        for a in inputs
    ]
    out = func(*tensors)
    out.sum().backward()
    for i, t in enumerate(tensors):
        num = numerical_gradient(func, inputs, i, eps=eps)
        got = t.grad if t.grad is not None else np.zeros_like(t.data)
        if not np.allclose(got, num, atol=atol, rtol=rtol):
            worst = np.abs(got - num).max()
            raise AssertionError(
                f"gradcheck failed for input {i}: max abs diff {worst:.3e}"
            )
    return True
