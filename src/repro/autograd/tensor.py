"""Tape-based reverse-mode autodiff tensor.

Each differentiable operation returns a new :class:`Tensor` holding its
parents and a backward closure that maps the output gradient to parent
gradients.  :meth:`Tensor.backward` runs a topological sweep over the tape.

Only float64/float32 data participates in gradients; integer tensors are
allowed but are treated as constants.
"""

from __future__ import annotations

import contextlib
from typing import Callable, Iterable

import numpy as np

from repro.errors import ReproError
from repro.obs.trace import get_tracer

_TRACE = get_tracer()

_GRAD_ENABLED = True

#: label cache for backward closures, keyed by the closure's code object
#: (one per ``def backward`` site, alive for the module's lifetime).
_BACKWARD_LABELS: dict[int, str] = {}


def _backward_label(fn: Callable) -> str:
    """Span name for a backward closure, e.g. ``autograd.matmul.backward``."""
    key = id(getattr(fn, "__code__", fn))
    label = _BACKWARD_LABELS.get(key)
    if label is None:
        qual = getattr(fn, "__qualname__", "op")
        parts = qual.split(".")
        # "Tensor.__matmul__.<locals>.backward" -> "matmul"
        owner = parts[-3] if len(parts) >= 3 else qual
        label = f"autograd.{owner.strip('_')}.backward"
        _BACKWARD_LABELS[key] = label
    return label


@contextlib.contextmanager
def no_grad():
    """Context manager disabling graph construction (for eval loops)."""
    global _GRAD_ENABLED
    prev = _GRAD_ENABLED
    _GRAD_ENABLED = False
    try:
        yield
    finally:
        _GRAD_ENABLED = prev


def is_grad_enabled() -> bool:
    """True when operations record the autodiff tape."""
    return _GRAD_ENABLED


def _unbroadcast(grad: np.ndarray, shape: tuple[int, ...]) -> np.ndarray:
    """Sum ``grad`` down to ``shape`` (reverse of numpy broadcasting)."""
    if grad.shape == shape:
        return grad
    # Sum over leading dims added by broadcasting.
    extra = grad.ndim - len(shape)
    if extra > 0:
        grad = grad.sum(axis=tuple(range(extra)))
    # Sum over dims that were 1 in the original shape.
    axes = tuple(i for i, s in enumerate(shape) if s == 1 and grad.shape[i] != 1)
    if axes:
        grad = grad.sum(axis=axes, keepdims=True)
    return grad.reshape(shape)


class Tensor:
    """A numpy array plus an optional autodiff tape node.

    Attributes:
        data: The underlying :class:`numpy.ndarray`.
        grad: Accumulated gradient (same shape as ``data``) or ``None``.
        requires_grad: Whether gradients flow into this tensor.
    """

    __slots__ = ("data", "grad", "requires_grad", "_parents", "_backward")

    def __init__(
        self,
        data,
        requires_grad: bool = False,
        parents: tuple["Tensor", ...] = (),
        backward: Callable[[np.ndarray], Iterable[np.ndarray | None]] | None = None,
    ):
        self.data = np.asarray(data)
        self.grad: np.ndarray | None = None
        self.requires_grad = bool(requires_grad) and _GRAD_ENABLED
        self._parents = parents if self.requires_grad else ()
        self._backward = backward if self.requires_grad else None

    # ------------------------------------------------------------------
    # Introspection
    # ------------------------------------------------------------------
    @property
    def shape(self) -> tuple[int, ...]:
        return self.data.shape

    @property
    def ndim(self) -> int:
        return self.data.ndim

    @property
    def size(self) -> int:
        return self.data.size

    @property
    def dtype(self):
        return self.data.dtype

    def numpy(self) -> np.ndarray:
        """Return the raw ndarray (shared, not copied)."""
        return self.data

    def item(self) -> float:
        return float(self.data)

    def detach(self) -> "Tensor":
        """Return a tensor sharing data but cut from the tape."""
        return Tensor(self.data, requires_grad=False)

    def zero_grad(self) -> None:
        self.grad = None

    def __repr__(self) -> str:
        grad = ", requires_grad=True" if self.requires_grad else ""
        return f"Tensor(shape={self.shape}, dtype={self.dtype}{grad})"

    # ------------------------------------------------------------------
    # Graph construction helpers
    # ------------------------------------------------------------------
    @staticmethod
    def _lift(value) -> "Tensor":
        return value if isinstance(value, Tensor) else Tensor(value)

    @staticmethod
    def make(
        data: np.ndarray,
        parents: tuple["Tensor", ...],
        backward: Callable[[np.ndarray], Iterable[np.ndarray | None]],
    ) -> "Tensor":
        """Create an op output wired to ``parents`` via ``backward``.

        ``backward(grad_out)`` must return one gradient (or ``None``) per
        parent.  This is the public hook custom layers use.
        """
        req = _GRAD_ENABLED and any(p.requires_grad for p in parents)
        return Tensor(data, requires_grad=req, parents=parents, backward=backward)

    # ------------------------------------------------------------------
    # Arithmetic
    # ------------------------------------------------------------------
    def __add__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data + other.data

        def backward(g):
            return (
                _unbroadcast(g, self.shape),
                _unbroadcast(g, other.shape),
            )

        return Tensor.make(out_data, (self, other), backward)

    __radd__ = __add__

    def __neg__(self) -> "Tensor":
        return Tensor.make(-self.data, (self,), lambda g: (-g,))

    def __sub__(self, other) -> "Tensor":
        return self + (-self._lift(other))

    def __rsub__(self, other) -> "Tensor":
        return self._lift(other) + (-self)

    def __mul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data * other.data

        def backward(g):
            return (
                _unbroadcast(g * other.data, self.shape),
                _unbroadcast(g * self.data, other.shape),
            )

        return Tensor.make(out_data, (self, other), backward)

    __rmul__ = __mul__

    def __truediv__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data / other.data

        def backward(g):
            return (
                _unbroadcast(g / other.data, self.shape),
                _unbroadcast(-g * self.data / (other.data**2), other.shape),
            )

        return Tensor.make(out_data, (self, other), backward)

    def __rtruediv__(self, other) -> "Tensor":
        return self._lift(other) / self

    def __pow__(self, exponent: float) -> "Tensor":
        if not np.isscalar(exponent):
            raise ReproError("only scalar exponents are supported")
        out_data = self.data**exponent

        def backward(g):
            return (g * exponent * self.data ** (exponent - 1),)

        return Tensor.make(out_data, (self,), backward)

    def __matmul__(self, other) -> "Tensor":
        other = self._lift(other)
        out_data = self.data @ other.data

        def backward(g):
            a, b = self.data, other.data
            if a.ndim == 1 and b.ndim == 1:  # dot product
                return (g * b, g * a)
            ga = g @ np.swapaxes(b, -1, -2) if b.ndim > 1 else np.outer(g, b)
            gb = np.swapaxes(a, -1, -2) @ g if a.ndim > 1 else np.outer(a, g)
            return (
                _unbroadcast(ga, self.shape),
                _unbroadcast(gb, other.shape),
            )

        return Tensor.make(out_data, (self, other), backward)

    # ------------------------------------------------------------------
    # Elementwise nonlinearities
    # ------------------------------------------------------------------
    def relu(self) -> "Tensor":
        mask = self.data > 0
        return Tensor.make(
            self.data * mask, (self,), lambda g: (g * mask,)
        )

    def exp(self) -> "Tensor":
        out_data = np.exp(self.data)
        return Tensor.make(out_data, (self,), lambda g: (g * out_data,))

    def log(self) -> "Tensor":
        return Tensor.make(
            np.log(self.data), (self,), lambda g: (g / self.data,)
        )

    def sqrt(self) -> "Tensor":
        out_data = np.sqrt(self.data)
        return Tensor.make(out_data, (self,), lambda g: (g / (2 * out_data),))

    def tanh(self) -> "Tensor":
        out_data = np.tanh(self.data)
        return Tensor.make(
            out_data, (self,), lambda g: (g * (1 - out_data**2),)
        )

    def sigmoid(self) -> "Tensor":
        out_data = 1.0 / (1.0 + np.exp(-self.data))
        return Tensor.make(
            out_data, (self,), lambda g: (g * out_data * (1 - out_data),)
        )

    def clip(self, lo: float, hi: float) -> "Tensor":
        """Clamp values; gradient passes only inside the range (QAT-style)."""
        mask = (self.data >= lo) & (self.data <= hi)
        return Tensor.make(
            np.clip(self.data, lo, hi), (self,), lambda g: (g * mask,)
        )

    # ------------------------------------------------------------------
    # Reductions
    # ------------------------------------------------------------------
    def sum(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.sum(axis=axis, keepdims=keepdims)

        def backward(g):
            g = np.asarray(g)
            if axis is None:
                return (np.broadcast_to(g, self.shape).copy(),)
            if not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.ndim for a in axes):
                    g = np.expand_dims(g, ax)
            return (np.broadcast_to(g, self.shape).copy(),)

        return Tensor.make(out_data, (self,), backward)

    def mean(self, axis=None, keepdims: bool = False) -> "Tensor":
        count = self.size if axis is None else np.prod(
            [self.shape[a % self.ndim] for a in (axis if isinstance(axis, tuple) else (axis,))]
        )
        return self.sum(axis=axis, keepdims=keepdims) * (1.0 / float(count))

    def max(self, axis=None, keepdims: bool = False) -> "Tensor":
        out_data = self.data.max(axis=axis, keepdims=keepdims)

        def backward(g):
            g = np.asarray(g)
            expanded = out_data
            if axis is not None and not keepdims:
                axes = axis if isinstance(axis, tuple) else (axis,)
                for ax in sorted(a % self.ndim for a in axes):
                    expanded = np.expand_dims(expanded, ax)
                    g = np.expand_dims(g, ax)
            mask = self.data == expanded
            # Split gradient between ties, matching subgradient convention.
            counts = mask.sum(
                axis=axis, keepdims=True
            ) if axis is not None else mask.sum()
            return (mask * g / counts,)

        return Tensor.make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Shape ops
    # ------------------------------------------------------------------
    def reshape(self, *shape) -> "Tensor":
        if len(shape) == 1 and isinstance(shape[0], (tuple, list)):
            shape = tuple(shape[0])
        out_data = self.data.reshape(shape)
        src = self.shape
        return Tensor.make(out_data, (self,), lambda g: (g.reshape(src),))

    def flatten_from(self, start: int = 1) -> "Tensor":
        """Flatten trailing dimensions starting at ``start`` (batch-safe)."""
        lead = self.shape[:start]
        return self.reshape(lead + (-1,))

    def transpose(self, *axes) -> "Tensor":
        if not axes:
            axes = tuple(reversed(range(self.ndim)))
        elif len(axes) == 1 and isinstance(axes[0], (tuple, list)):
            axes = tuple(axes[0])
        inverse = tuple(np.argsort(axes))
        return Tensor.make(
            self.data.transpose(axes),
            (self,),
            lambda g: (g.transpose(inverse),),
        )

    @property
    def T(self) -> "Tensor":
        return self.transpose()

    def __getitem__(self, index) -> "Tensor":
        out_data = self.data[index]

        def backward(g):
            full = np.zeros_like(self.data, dtype=g.dtype)
            np.add.at(full, index, g)
            return (full,)

        return Tensor.make(out_data, (self,), backward)

    def pad2d(self, pad: int) -> "Tensor":
        """Zero-pad the last two dimensions symmetrically by ``pad``."""
        if pad == 0:
            return self
        width = [(0, 0)] * (self.ndim - 2) + [(pad, pad), (pad, pad)]
        out_data = np.pad(self.data, width)

        def backward(g):
            sl = [slice(None)] * (self.ndim - 2) + [
                slice(pad, -pad),
                slice(pad, -pad),
            ]
            return (g[tuple(sl)],)

        return Tensor.make(out_data, (self,), backward)

    # ------------------------------------------------------------------
    # Backward pass
    # ------------------------------------------------------------------
    def backward(self, grad: np.ndarray | None = None) -> None:
        """Run reverse-mode accumulation from this tensor.

        Args:
            grad: Seed gradient; defaults to ones (must be scalar output
                for the default to make sense).
        """
        if not self.requires_grad:
            raise ReproError("backward() on a tensor without requires_grad")
        if grad is None:
            if self.size != 1:
                raise ReproError("backward() without grad needs scalar output")
            grad = np.ones_like(self.data, dtype=np.float64)

        topo: list[Tensor] = []
        visited: set[int] = set()
        stack: list[tuple[Tensor, bool]] = [(self, False)]
        while stack:
            node, expanded = stack.pop()
            if id(node) in visited:
                continue
            if expanded:
                visited.add(id(node))
                topo.append(node)
                continue
            stack.append((node, True))
            for p in node._parents:
                if p.requires_grad and id(p) not in visited:
                    stack.append((p, False))

        grads: dict[int, np.ndarray] = {id(self): np.asarray(grad)}
        for node in reversed(topo):
            g = grads.pop(id(node), None)
            if g is None:
                continue
            if node.grad is None:
                node.grad = np.zeros_like(node.data, dtype=np.float64)
            # In-place accumulate: node.grad is float64 and owned by the
            # tape (allocated above or by a prior sweep), so no caller's
            # array is mutated; avoids one full-size temporary per node.
            np.add(node.grad, g, out=node.grad)
            if node._backward is None:
                continue
            if _TRACE.enabled:
                with _TRACE.span(_backward_label(node._backward),
                                 cat="autograd"):
                    parent_grads = node._backward(g)
            else:
                parent_grads = node._backward(g)
            for p, pg in zip(node._parents, parent_grads):
                if pg is None or not p.requires_grad:
                    continue
                if id(p) in grads:
                    grads[id(p)] = grads[id(p)] + pg
                else:
                    grads[id(p)] = pg
