"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CircuitError(ReproError):
    """Raised for malformed netlists or invalid circuit operations."""


class QuantizationError(ReproError):
    """Raised for invalid quantization configurations or uncalibrated use."""


class ConfigError(ReproError):
    """Raised for invalid experiment or model configurations."""


class TransientRunError(ReproError):
    """Raised for retryable failures inside one sweep cell (e.g. a
    non-finite loss or an injected fault); the sweep runner retries these
    with capped exponential backoff before declaring the run failed."""


class ServeError(ReproError):
    """Raised for inference-serving failures (plan compilation, pool use)."""


class ServerBusyError(ServeError):
    """Raised when the serving queue is full (maps to HTTP 503)."""
