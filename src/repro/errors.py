"""Exception hierarchy for the :mod:`repro` package."""


class ReproError(Exception):
    """Base class for all errors raised by this package."""


class CircuitError(ReproError):
    """Raised for malformed netlists or invalid circuit operations."""


class QuantizationError(ReproError):
    """Raised for invalid quantization configurations or uncalibrated use."""


class ConfigError(ReproError):
    """Raised for invalid experiment or model configurations."""


class TransientRunError(ReproError):
    """Raised for retryable failures inside one sweep cell (e.g. a
    non-finite loss or an injected fault); the sweep runner retries these
    with capped exponential backoff before declaring the run failed."""


class TrainingHealthError(TransientRunError):
    """Raised by the anomaly monitor (:mod:`repro.obs.health`) when a
    training run goes numerically bad.  Subclasses ``TransientRunError``
    so sweep cells retry these with backoff, same as any other
    non-finite-result failure."""


class NonFiniteLossError(TrainingHealthError):
    """Raised when a training batch produces a NaN/inf loss.

    Attributes:
        epoch: 0-based epoch the bad batch ran in.
        step: 0-based batch index within the epoch.
        loss_value: The non-finite loss value observed.
        last_finite_loss: Most recent finite loss before the blow-up
            (``None`` when the very first batch was non-finite).
    """

    def __init__(self, message, epoch, step, loss_value, last_finite_loss):
        super().__init__(message)
        self.epoch = epoch
        self.step = step
        self.loss_value = loss_value
        self.last_finite_loss = last_finite_loss


class NonFiniteGradientError(TrainingHealthError):
    """Raised when a parameter gradient contains NaN/inf.

    Attributes:
        layer: Dotted parameter name whose gradient was non-finite.
        epoch: 0-based epoch of the offending step.
        step: 0-based batch index within the epoch.
    """

    def __init__(self, message, layer, epoch, step):
        super().__init__(message)
        self.layer = layer
        self.epoch = epoch
        self.step = step


class ServeError(ReproError):
    """Raised for inference-serving failures (plan compilation, pool use)."""


class ServerBusyError(ServeError):
    """Raised when the serving queue is full (maps to HTTP 503)."""


class PlanShapeError(ServeError):
    """Compiled-plan output shape differs from the training graph's.

    Raised by :func:`repro.serve.plan.verify_plan` instead of comparing
    mismatched arrays (whose ``max |delta|`` used to come out as a silent
    NaN that passed straight into downstream reports).

    Attributes:
        op_name: Name of the plan op that produced the mismatched output.
        ref_shape: Output shape of the eval-mode training graph.
        plan_shape: Output shape the compiled plan produced.
    """

    def __init__(self, op_name, ref_shape, plan_shape, model=""):
        self.op_name = op_name
        self.ref_shape = tuple(ref_shape)
        self.plan_shape = tuple(plan_shape)
        suffix = f" of {model}" if model else ""
        super().__init__(
            f"plan output shape {self.plan_shape} (produced by op "
            f"{op_name!r}{suffix}) does not match the training-graph "
            f"output shape {self.ref_shape}"
        )
