"""Accuracy-vs-power design-space exploration (the Fig. 5 workload).

Retrains a scaled ResNet18 with several 7-bit AppMults under both gradient
methods and prints the accuracy / normalized-power frontier, mirroring the
paper's Fig. 5a.  The headline claim reproduced here in shape: with the
difference-based gradient, aggressive AppMults (~50% power saving) hold
accuracy near the AccMult reference, while STE fluctuates far below.

Run:  python examples/accuracy_power_tradeoff.py
"""

from repro.retrain.experiment import ExperimentScale, retrain_comparison
from repro.retrain.results import format_table2, format_tradeoff

MULTIPLIERS = ["mul7u_06Q", "mul7u_rm6", "mul7u_syn2"]

SCALE = ExperimentScale(
    image_size=16,
    n_train=512,
    n_test=192,
    n_classes=10,
    width_mult=0.125,
    pretrain_epochs=12,
    qat_epochs=2,
    retrain_epochs=3,
    batch_size=32,
    seed=0,
)


def main() -> None:
    print("Running the STE-vs-difference comparison on ResNet18 "
          f"({len(MULTIPLIERS)} multipliers, scaled down for CPU)...\n")
    rows, refs = retrain_comparison(
        "resnet18", MULTIPLIERS, SCALE, methods=("ste", "difference")
    )
    print(format_table2(rows, refs, title="ResNet18 comparison"))
    print()
    print(format_tradeoff(rows, refs))
    print(
        "\nPower is normalized to the 8-bit accurate multiplier "
        "(mul8u_acc); the 7-bit AccMult sits at 0.69 (paper Table II)."
    )


if __name__ == "__main__":
    main()
