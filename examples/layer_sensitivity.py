"""Per-layer sensitivity analysis and mixed multiplier assignment.

Goes beyond the paper's uniform multiplier replacement: measures how much
each conv layer's output degrades under an AppMult (error propagation),
how well each gradient method explains the AppMult's local slope (gradient
fidelity), and then runs a greedy cross-layer assignment that approximates
only the layers that tolerate it.  Note the budget here applies *without*
retraining -- truncation bias accumulates over the inner sum, which is
exactly why the paper's initial accuracies collapse and retraining is
needed; a mixed model would be retrained afterwards the same way.

Run:  python examples/layer_sensitivity.py
"""

from repro.analysis import gradient_fidelity, layer_error_report
from repro.analysis.propagation import format_error_report
from repro.core.gradient import gradient_luts
from repro.data import DataLoader, SyntheticImageDataset
from repro.models import LeNet
from repro.multipliers import get_multiplier
from repro.retrain import TrainConfig, Trainer, approximate_model, calibrate, freeze
from repro.retrain.mixed import greedy_mixed_assignment

MULTIPLIER = "mul7u_06Q"


def main() -> None:
    train = SyntheticImageDataset(384, 10, 12, seed=8, split="train")
    test = SyntheticImageDataset(160, 10, 12, seed=8, split="test")
    model = LeNet(num_classes=10, image_size=12, seed=8)
    Trainer(model, TrainConfig(epochs=8, batch_size=32, base_lr=3e-3)).fit(train)

    mult = get_multiplier(MULTIPLIER)

    print("== gradient fidelity (how well each method tracks the AppMult) ==")
    for method, hws in (("ste", None), ("difference", 4), ("raw-difference", None)):
        pair = gradient_luts(mult, method, hws=hws)
        fid = gradient_fidelity(mult, pair, horizon=2)
        print(f"{method:>16}: cosine={fid.cosine:+.4f}  mae={fid.mae:.3f}")

    print("\n== per-layer error propagation ==")
    approx = approximate_model(model, mult, gradient_method="ste")
    calibrate(approx, DataLoader(train, batch_size=32), batches=3)
    freeze(approx)
    print(format_error_report(layer_error_report(approx, mult, test.images[:32])))

    print("\n== greedy mixed assignment (budget: 10pp accuracy drop) ==")
    result = greedy_mixed_assignment(
        model, mult, train, test, accuracy_budget=0.10, batch_size=32
    )
    print(f"reference (exact {mult.bits}-bit): "
          f"{100 * result.reference_accuracy:.2f}%")
    for sens in result.sensitivities:
        chosen = "approximated" if sens.layer in result.assignment else "kept exact"
        print(f"  {sens.layer:<20} isolated drop {100 * sens.drop:+.2f}pp "
              f"-> {chosen}")
    print(f"mixed model accuracy: {100 * result.accuracy:.2f}% "
          f"({100 * result.approx_fraction:.0f}% of conv layers approximate)")


if __name__ == "__main__":
    main()
