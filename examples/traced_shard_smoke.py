"""Distributed tracing + flight recorder smoke on the sharded server.

Demonstrates the cross-process observability layer (`repro.obs.dist`)
end to end on a small approximate LeNet:

1. enable the tracer, start a 2-worker
   :class:`~repro.serve.shard.ShardServer` -- the trace slab is created
   before the fork, so worker spans ship back over shared memory and are
   merged onto the router's timeline with per-process clock calibration,
2. push a burst of requests and verify the outputs stay bit-identical to
   the untraced single-process integer plan (tracing never changes the
   numbers),
3. SIGKILL one worker mid-load: the flight recorder salvages its last
   spans + request ids from shared memory into a JSON black box before
   the supervisor respawns the slot,
4. shut down, export the router's Chrome trace, merge it with the black
   box (``repro trace <dir>`` does the same), and verify the merged
   trace carries spans from at least two processes plus a per-stage
   latency report.

Run:  python examples/traced_shard_smoke.py
"""

import json
import os
import signal
import tempfile
import time

import numpy as np

from repro.data import DataLoader, SyntheticImageDataset
from repro.models import LeNet
from repro.multipliers import get_multiplier
from repro.obs import trace as obs_trace
from repro.obs.dist import (
    latency_report,
    load_trace_file,
    merge_chrome_traces,
    stage_breakdown,
)
from repro.obs.export import write_chrome_trace
from repro.retrain import approximate_model, calibrate, freeze
from repro.serve import ShardServer, compile_plan

MULTIPLIER = "mul6u_rm4"
IMAGE_SIZE = 12
WORKERS = 2
REQUESTS = 24


def main() -> None:
    print("== 1. Freeze the model, compile the integer plan ==")
    train = SyntheticImageDataset(96, 4, IMAGE_SIZE, seed=3, split="train")
    model = approximate_model(
        LeNet(num_classes=4, image_size=IMAGE_SIZE, seed=0),
        get_multiplier(MULTIPLIER),
        gradient_method="difference", hws=2, include_linear=True,
    )
    calibrate(model, DataLoader(train, batch_size=32), batches=2)
    freeze(model)
    model.eval()
    rng = np.random.default_rng(7)
    x = rng.standard_normal((REQUESTS, 3, IMAGE_SIZE, IMAGE_SIZE))
    ref = compile_plan(model, arithmetic="int").run(x)  # untraced reference

    trace_dir = tempfile.mkdtemp(prefix="repro-trace-smoke-")
    print(f"\n== 2. Start {WORKERS} traced workers "
          f"(artifacts -> {trace_dir}) ==")
    tracer = obs_trace.get_tracer()
    tracer.reset()
    tracer.enable()
    server = ShardServer(
        lambda: compile_plan(model, arithmetic="int"),
        workers=WORKERS, max_batch=8, max_wait_ms=2.0, queue_size=64,
        trace_dir=trace_dir,
    ).start()
    assert server.tracectl is not None, "tracing was enabled before start"
    print(f"trace slab: {server.tracectl.segment} "
          f"(worker spans ship over shared memory)")

    print("\n== 3. Route a traced burst, verify bit-identity ==")
    futures = [server.submit(s) for s in x]
    outs = [f.result(timeout=60.0) for f in futures]
    assert all(np.array_equal(o, r) for o, r in zip(outs, ref)), \
        "traced sharded outputs must be bit-identical to the integer plan"
    print(f"{REQUESTS}/{REQUESTS} responses bit-identical with tracing on")

    print("\n== 4. SIGKILL one worker: flight recorder dumps a black box ==")
    victim = server.supervisor.live_handles()[0].pid
    futures = [server.submit(s) for s in x]
    os.kill(victim, signal.SIGKILL)
    outs = [f.result(timeout=60.0) for f in futures]
    assert all(np.array_equal(o, r) for o, r in zip(outs, ref)), \
        "re-dispatched batches must still be bit-identical"
    deadline = time.monotonic() + 15.0
    while server.alive_workers < WORKERS and time.monotonic() < deadline:
        time.sleep(0.05)
    dumps = [f for f in os.listdir(trace_dir) if f.startswith("blackbox-")]
    assert dumps, "the SIGKILLed worker must leave a flight-recorder dump"
    blackbox = json.load(open(os.path.join(trace_dir, dumps[0])))
    print(f"killed pid {victim}: black box {dumps[0]} holds "
          f"{len(blackbox['spans'])} span(s), "
          f"{len(blackbox['recent_request_ids'])} recent request id(s), "
          f"flight dumps: "
          f"{server.metrics.counter('flight_recorder_dumps_total')}")

    print("\n== 5. Shut down, merge traces, report latency stages ==")
    server.shutdown(drain=True)
    tracer.disable()
    router_trace = os.path.join(trace_dir, "trace.json")
    write_chrome_trace(router_trace, tracer)
    docs = [load_trace_file(os.path.join(trace_dir, f))
            for f in sorted(os.listdir(trace_dir)) if f.endswith(".json")]
    merged = merge_chrome_traces(docs)
    pids = {e["pid"] for e in merged["traceEvents"] if e.get("ph") == "X"}
    assert len(pids) >= 2, f"merged trace must span >= 2 pids, got {pids}"
    info = stage_breakdown(merged)
    assert info["n_requests"] == 2 * REQUESTS, "every request traced once"
    print(f"merged {len(docs)} trace file(s): "
          f"{len(merged['traceEvents'])} events from {len(pids)} pids")
    print()
    print(latency_report(merged))
    print("\n(same merge/report from the CLI: "
          f"`repro trace {trace_dir}`)")


if __name__ == "__main__":
    main()
