"""Design an AppMult with approximate logic synthesis, then retrain with it.

Reproduces the origin story of the paper's ``_syn`` multipliers: start from
an exact gate-level Wallace multiplier, run the SASIMI-style approximate
synthesis pass under an NMED budget (stand-in for ALSRAC [28]), inspect the
area/power savings and error metrics of the result, and verify that a DNN
retrained with the difference-based gradient tolerates the synthesized
multiplier.

Run:  python examples/als_design.py
"""

from repro.circuits import (
    ApproxSynthesisConfig,
    approximate_synthesis,
    estimate_cost,
    wallace_multiplier,
)
from repro.data import DataLoader, SyntheticImageDataset
from repro.models import LeNet
from repro.multipliers import error_metrics
from repro.multipliers.base import NetlistMultiplier
from repro.retrain import (
    TrainConfig,
    Trainer,
    approximate_model,
    calibrate,
    evaluate,
    freeze,
)

BITS = 7
NMED_BUDGET = 0.0035  # 0.35%


def main() -> None:
    exact = wallace_multiplier(BITS)
    exact_cost = estimate_cost(exact)
    print(f"exact {BITS}-bit multiplier: {exact.stats()}")
    print(
        f"  cost: {exact_cost.area_um2:.1f} um^2, "
        f"{exact_cost.power_uw:.2f} uW"
    )

    print(f"\nrunning approximate synthesis (NMED budget {NMED_BUDGET:.2%})...")
    result = approximate_synthesis(
        exact,
        ApproxSynthesisConfig(
            nmed_budget=NMED_BUDGET, maxed_budget=600, max_moves=60, seed=5
        ),
    )
    cost = estimate_cost(result.netlist)
    print(f"  accepted {len(result.moves)} rewrites, "
          f"area {result.area_before:.1f} -> {result.area_after:.1f} um^2 "
          f"({100 * result.area_saving:.0f}% saved), "
          f"power {exact_cost.power_uw:.2f} -> {cost.power_uw:.2f} uW")

    mult = NetlistMultiplier("mul7u_custom_syn", BITS, result.netlist)
    print(f"  error metrics: {error_metrics(mult)}")

    print("\nretraining a LeNet with the synthesized multiplier...")
    train = SyntheticImageDataset(384, 10, 12, seed=6, split="train")
    test = SyntheticImageDataset(160, 10, 12, seed=6, split="test")
    base = LeNet(num_classes=10, image_size=12, seed=6)
    Trainer(base, TrainConfig(epochs=8, batch_size=32, base_lr=3e-3)).fit(train)
    float_top1, _ = evaluate(base, test)

    model = approximate_model(base, mult, gradient_method="difference", hws=8)
    calibrate(model, DataLoader(train, batch_size=32), batches=3)
    freeze(model)
    init, _ = evaluate(model, test)
    Trainer(model, TrainConfig(epochs=3, batch_size=32)).fit(train)
    final, _ = evaluate(model, test)
    print(
        f"float {100 * float_top1:.2f}% -> initial {100 * init:.2f}% -> "
        f"retrained {100 * final:.2f}%"
    )


if __name__ == "__main__":
    main()
