"""Sharded multi-process serving smoke: shm segments, routing, respawn.

Demonstrates the sharded serving subsystem (`repro.serve.shard`) end to
end on a small approximate LeNet:

1. calibrate + freeze the model and compile the integer-only plan,
2. start a :class:`~repro.serve.shard.ShardServer` with two forked
   workers -- the parent publishes every LUT table and requant constant
   block into shared memory exactly once, workers inherit the mappings,
3. push a burst of requests through the least-loaded router and check
   the outputs are bit-identical to the single-process integer plan,
4. SIGKILL one worker mid-load: the orphaned batches are re-dispatched
   (zero failed responses) and the supervisor respawns the worker,
5. shut down and verify no ``/dev/shm`` segment outlives the server.

The same thing is available from the command line::

    repro serve --sharded --workers 2 --arithmetic int \
        --checkpoint model.npz --multiplier mul7u_rm6

Run:  python examples/sharded_smoke.py
"""

import os
import signal
import time

import numpy as np

from repro.data import DataLoader, SyntheticImageDataset
from repro.models import LeNet
from repro.multipliers import get_multiplier
from repro.retrain import approximate_model, calibrate, freeze
from repro.serve import ShardServer, compile_plan
from repro.serve.shm import segment_exists

MULTIPLIER = "mul7u_rm6"
IMAGE_SIZE = 12
WORKERS = 2
REQUESTS = 24


def main() -> None:
    print("== 1. Freeze the model, compile the integer plan ==")
    train = SyntheticImageDataset(96, 4, IMAGE_SIZE, seed=3, split="train")
    model = approximate_model(
        LeNet(num_classes=4, image_size=IMAGE_SIZE, seed=0),
        get_multiplier(MULTIPLIER),
        gradient_method="difference", hws=2, include_linear=True,
    )
    calibrate(model, DataLoader(train, batch_size=32), batches=2)
    freeze(model)
    model.eval()
    plan = compile_plan(model, arithmetic="int")
    rng = np.random.default_rng(7)
    x = rng.standard_normal((REQUESTS, 3, IMAGE_SIZE, IMAGE_SIZE))
    ref = plan.run(x)

    print(f"\n== 2. Start {WORKERS} forked plan workers ==")
    server = ShardServer(
        lambda: compile_plan(model, arithmetic="int"),
        workers=WORKERS, max_batch=8, max_wait_ms=2.0, queue_size=64,
    ).start()
    segments = list(server.store.owned_segments())
    segments.append(server.supervisor.heartbeat_segment)
    print(f"shared segments: {len(segments)} "
          f"({server.shm_info['bytes'] / 1024:.1f} KiB of LUT/requant "
          f"tables, published once per host)")

    print("\n== 3. Route a burst, verify bit-identity ==")
    futures = [server.submit(s) for s in x]
    outs = [f.result(timeout=60.0) for f in futures]
    assert all(np.array_equal(o, r) for o, r in zip(outs, ref)), \
        "sharded outputs must be bit-identical to the integer plan"
    print(f"{REQUESTS}/{REQUESTS} responses bit-identical, "
          f"workers alive: {server.alive_workers}")

    print("\n== 4. SIGKILL one worker mid-load ==")
    victim = server.supervisor.live_handles()[0].pid
    futures = [server.submit(s) for s in x]
    os.kill(victim, signal.SIGKILL)
    outs = [f.result(timeout=60.0) for f in futures]
    assert all(np.array_equal(o, r) for o, r in zip(outs, ref)), \
        "re-dispatched batches must still be bit-identical"
    deadline = time.monotonic() + 15.0
    while server.alive_workers < WORKERS and time.monotonic() < deadline:
        time.sleep(0.05)
    print(f"killed pid {victim}: {REQUESTS}/{REQUESTS} responses ok, "
          f"workers alive again: {server.alive_workers}, "
          f"respawns: {server.metrics.counter('worker_respawns_total')}")

    print("\n== 5. Drain, shut down, verify shm cleanup ==")
    server.shutdown(drain=True)
    leaked = [s for s in segments if segment_exists(s)]
    assert not leaked, f"leaked shared-memory segments: {leaked}"
    print("all shared-memory segments unlinked")
    print(server.metrics.format_report())


if __name__ == "__main__":
    main()
