"""HWS selection: reproduce the Section V-A tuning procedure.

The half window size (HWS) of Eq. 4 controls how aggressively the AppMult
function is smoothed before differencing.  The paper selects it per
multiplier by training a small LeNet for a few epochs with each candidate
and keeping the one with the lowest training loss (Table I, last column).

Run:  python examples/hws_selection.py [multiplier_name]
"""

import sys

from repro.core.hws import select_hws
from repro.multipliers import get_multiplier, multiplier_info


def main() -> None:
    name = sys.argv[1] if len(sys.argv) > 1 else "mul6u_rm4"
    info = multiplier_info(name)
    mult = get_multiplier(name)

    print(f"Sweeping HWS for {name} ({info.bits}-bit, {info.category})")
    print(f"Table I selected HWS: {info.default_hws}")

    result = select_hws(
        mult,
        candidates=(1, 2, 4, 8, 16, 32),
        epochs=2,
        train_size=256,
        batch_size=32,
        image_size=12,
        seed=0,
    )
    print(f"\n{'HWS':>5} {'final train loss':>17}")
    for hws in result.candidates:
        marker = "  <- selected" if hws == result.best_hws else ""
        print(f"{hws:>5} {result.losses[hws]:17.4f}{marker}")
    print(f"\nselected HWS = {result.best_hws}")


if __name__ == "__main__":
    main()
