"""Multiplier design-space exploration: error/power Pareto frontier.

The step an accelerator designer runs before the paper's retraining flow:
enumerate candidate approximate multiplier designs, characterize each with
exhaustive error metrics (Eq. 2) and the gate-level cost model, and keep
the Pareto-optimal ones.  Also demonstrates workload-aware
characterization: re-weighting Eq. 2's input distribution with activation
histograms harvested from a calibrated model.

Run:  python examples/multiplier_dse.py
"""

import numpy as np

from repro.data import DataLoader, SyntheticImageDataset
from repro.models import LeNet
from repro.multipliers import error_metrics, get_multiplier
from repro.multipliers.catalog import (
    enumerate_candidates,
    format_catalog,
    pareto_front,
)
from repro.multipliers.metrics import operand_histogram
from repro.nn.quant import quantize_array
from repro.retrain import approximate_model, calibrate, freeze

BITS = 7


def main() -> None:
    print(f"Enumerating {BITS}-bit multiplier designs...")
    points = enumerate_candidates(
        BITS,
        truncations=(2, 4, 6, 8),
        compensation_fractions=(0.0, 0.5, 1.0),
        drum_ts=(4, 5),
    )
    front = pareto_front(points)
    print(format_catalog(points, front))
    print(f"\nPareto-optimal designs: {', '.join(p.name for p in front)}")

    print("\nWorkload-aware characterization (Eq. 2 with observed p_i):")
    data = SyntheticImageDataset(128, 10, 12, seed=1)
    model = LeNet(num_classes=10, image_size=12, seed=1)
    mult = get_multiplier("mul7u_rm6")
    approx = approximate_model(model, mult, gradient_method="ste")
    calibrate(approx, DataLoader(data, batch_size=32), batches=2)
    freeze(approx)
    # Harvest the first conv layer's quantized input distribution.
    layer = approx.features.steps[0]
    with np.errstate(all="ignore"):
        xq = quantize_array(data.images[:64], layer.quant.x_qparams)
    hist = operand_histogram(xq, BITS)
    uniform = error_metrics(mult)
    weighted = error_metrics(mult, x_probs=hist)
    print(f"  uniform  : {uniform}")
    print(f"  workload : {weighted}")
    print("  (activation distributions concentrate on small magnitudes, so "
          "the effective NMED of truncation differs from the uniform one)")


if __name__ == "__main__":
    main()
