"""Robustness of a retrained AppMult model to hardware faults.

AppMult-based accelerators can suffer soft errors (bit flips) and hard
defects (stuck-at bits) on top of their designed-in approximation.
Because this framework represents multipliers as LUTs, both fault models
are LUT corruptions: this example retrains a model with an AppMult, then
measures accuracy as the multiplier degrades.

Run:  python examples/fault_robustness.py
"""

from repro.analysis.faults import (
    accuracy_under_faults,
    inject_stuck_output_bit,
)
from repro.data import DataLoader, SyntheticImageDataset
from repro.models import LeNet
from repro.multipliers import error_metrics, get_multiplier
from repro.retrain import (
    TrainConfig,
    Trainer,
    approximate_model,
    calibrate,
    evaluate,
    freeze,
)
from repro.retrain.mixed import named_approx_layers

MULTIPLIER = "mul7u_rm6"


def main() -> None:
    train = SyntheticImageDataset(384, 10, 12, seed=15, split="train")
    test = SyntheticImageDataset(160, 10, 12, seed=15, split="test")
    model = LeNet(num_classes=10, image_size=12, seed=15)
    Trainer(model, TrainConfig(epochs=8, batch_size=32, base_lr=3e-3)).fit(train)

    mult = get_multiplier(MULTIPLIER)
    approx = approximate_model(model, mult, gradient_method="difference")
    calibrate(approx, DataLoader(train, batch_size=32), batches=3)
    freeze(approx)
    Trainer(approx, TrainConfig(epochs=3, batch_size=32)).fit(train)
    clean, _ = evaluate(approx, test)
    print(f"retrained accuracy with {MULTIPLIER}: {100 * clean:.2f}%")

    print("\n== soft errors: random LUT bit flips ==")
    results = accuracy_under_faults(
        approx, mult, test, fault_counts=[0, 64, 512, 4096], seed=0
    )
    for count, top1 in results.items():
        frac = count / mult.lut().size
        print(f"  {count:5d} flips ({100 * frac:5.1f}% of entries): "
              f"{100 * top1:.2f}%")

    print("\n== hard defects: one stuck-at-1 output bit ==")
    import copy

    for bit in (1, 6, 12):
        faulty = inject_stuck_output_bit(mult, bit=bit, value=1)
        em = error_metrics(faulty)
        trial = copy.deepcopy(approx)
        for _name, layer in named_approx_layers(trial):
            # Never mutate the shared cached engine: derive a private one.
            layer.multiplier = faulty
            layer.engine = layer.engine.clone_with_multiplier(faulty)
        top1, _ = evaluate(trial, test)
        print(f"  product bit {bit:2d} stuck at 1 (NMED {em.nmed_percent:.2f}%): "
              f"{100 * top1:.2f}%")
    print("\nLow-order faults barely matter (the AppMult already discards "
          "that information); high-order faults are catastrophic.")


if __name__ == "__main__":
    main()
