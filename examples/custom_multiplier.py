"""Bring your own AppMult and your own gradient.

The paper's framework "can accommodate other user-defined gradients of
AppMults".  This example shows both extension points:

1. define a custom behavioral AppMult (here: a broken-array multiplier that
   perforates a diagonal band of partial products),
2. characterize it (exhaustive Eq. 2 metrics + gate-level cost),
3. retrain once with the paper's difference-based gradient and once with a
   hand-rolled *user-defined* gradient table,
4. compare.

Run:  python examples/custom_multiplier.py
"""

import numpy as np

from repro.circuits.cost import estimate_cost
from repro.core.gradient import GradientPair, gradient_luts
from repro.data import DataLoader, SyntheticImageDataset
from repro.models import LeNet
from repro.multipliers import error_metrics
from repro.multipliers.evoapprox import PartialProductMultiplier
from repro.retrain import (
    TrainConfig,
    Trainer,
    approximate_model,
    calibrate,
    evaluate,
    freeze,
)

BITS = 7


def build_custom_multiplier() -> PartialProductMultiplier:
    """Perforate the anti-diagonal band i+j in {4, 5} of a 7-bit array."""
    dropped = {
        (i, j)
        for i in range(BITS)
        for j in range(BITS)
        if i + j in (4, 5)
    }
    return PartialProductMultiplier("mul7u_band45", BITS, dropped, compensation=24)


def scaled_ste_gradient(multiplier) -> GradientPair:
    """A user-defined gradient: STE damped by each row/column's error rate.

    Purely illustrative -- any ``(2**B, 2**B)`` float tables can be used.
    """
    n = 1 << multiplier.bits
    err = multiplier.error_surface() != 0
    damp_w = 1.0 - 0.5 * err.mean(axis=0)  # per-X column error rate
    damp_x = 1.0 - 0.5 * err.mean(axis=1)  # per-W row error rate
    w = np.arange(n, dtype=np.float32)
    grad_x = np.broadcast_to(w[:, None] * damp_x[:, None], (n, n))
    grad_w = np.broadcast_to(w[None, :] * damp_w[None, :], (n, n))
    return GradientPair(
        grad_w.astype(np.float32).copy(),
        grad_x.astype(np.float32).copy(),
        "user-defined damped STE",
    )


def main() -> None:
    mult = build_custom_multiplier()
    print(f"custom AppMult {mult.name}: {error_metrics(mult)}")
    cost = estimate_cost(mult.build_netlist())
    print(
        f"gate-level cost: {cost.area_um2:.1f} um^2, "
        f"{cost.delay_ps:.0f} ps, {cost.power_uw:.2f} uW "
        f"({cost.n_gates} gates)"
    )

    train = SyntheticImageDataset(384, 10, 12, seed=4, split="train")
    test = SyntheticImageDataset(160, 10, 12, seed=4, split="test")
    base = LeNet(num_classes=10, image_size=12, seed=4)
    Trainer(base, TrainConfig(epochs=8, batch_size=32, base_lr=3e-3)).fit(train)

    gradients = {
        "difference (hws=4)": gradient_luts(mult, "difference", hws=4),
        "user-defined": scaled_ste_gradient(mult),
    }
    for label, pair in gradients.items():
        model = approximate_model(base, mult, gradients=pair)
        calibrate(model, DataLoader(train, batch_size=32), batches=3)
        freeze(model)
        init, _ = evaluate(model, test)
        Trainer(model, TrainConfig(epochs=3, batch_size=32)).fit(train)
        top1, _ = evaluate(model, test)
        print(
            f"{label:>20}: initial {100 * init:.2f}% -> "
            f"retrained {100 * top1:.2f}%"
        )


if __name__ == "__main__":
    main()
