"""Serve a retrained approximate model over HTTP with `repro.serve`.

Walks the deployment half of the story: after retraining recovers the
accuracy lost to the approximate multiplier, the training graph (tape,
gradient LUTs, autograd bookkeeping) is pure overhead at inference time.
``repro.serve`` compiles the frozen model into a flat plan of integer ops,
runs it on a micro-batching worker pool, and exposes it via a stdlib HTTP
endpoint:

1. pretrain a tiny LeNet and retrain it with an AppMult (short budget),
2. save / reload the checkpoint the way a deployment would,
3. compile the inference plan and check it is bit-identical to the
   eval-mode forward,
4. start the HTTP server on a random port and hit /healthz, /predict
   (single + burst of singles, which the scheduler coalesces), /metrics,
5. drain the pool and print the serving report.

The same thing is available from the command line::

    repro serve --checkpoint model.npz --multiplier mul7u_rm6 --port 8080

Run:  python examples/serve_model.py
"""

import json
import os
import tempfile
import threading
import urllib.request

import numpy as np

from repro.autograd.tensor import Tensor, no_grad
from repro.data import DataLoader, SyntheticImageDataset
from repro.models import LeNet
from repro.multipliers import get_multiplier
from repro.retrain import (
    TrainConfig,
    Trainer,
    approximate_model,
    calibrate,
    freeze,
)
from repro.retrain.checkpoint import load_checkpoint, save_checkpoint
from repro.serve import ServeMetrics, WorkerPool, compile_plan, make_server

MULTIPLIER = "mul7u_rm6"
IMAGE_SIZE = 12


def _get(url: str) -> dict:
    with urllib.request.urlopen(url, timeout=10) as resp:
        return json.loads(resp.read())


def _post(url: str, payload: dict) -> dict:
    req = urllib.request.Request(
        url,
        data=json.dumps(payload).encode(),
        headers={"Content-Type": "application/json"},
    )
    with urllib.request.urlopen(req, timeout=30) as resp:
        return json.loads(resp.read())


def main() -> None:
    train = SyntheticImageDataset(128, 4, IMAGE_SIZE, seed=3, split="train")

    print("== 1. Pretrain + retrain with", MULTIPLIER, "==")
    model = LeNet(num_classes=4, image_size=IMAGE_SIZE, seed=0)
    Trainer(model, TrainConfig(epochs=1, batch_size=32)).fit(train)
    approx = approximate_model(
        model, get_multiplier(MULTIPLIER),
        gradient_method="difference", hws=2, include_linear=True,
    )
    calibrate(approx, DataLoader(train, batch_size=32), batches=2)
    freeze(approx)
    Trainer(approx, TrainConfig(epochs=1, batch_size=32)).fit(train)

    print("\n== 2. Checkpoint round-trip ==")
    with tempfile.TemporaryDirectory() as tmp:
        ckpt = os.path.join(tmp, "serve_demo.npz")
        save_checkpoint(approx, ckpt)
        served = approximate_model(
            LeNet(num_classes=4, image_size=IMAGE_SIZE, seed=0),
            get_multiplier(MULTIPLIER),
            gradient_method="none",  # forward-only engines, no gradient LUTs
            include_linear=True,
        )
        load_checkpoint(served, ckpt)
    served.eval()

    print("\n== 3. Compile the inference plan ==")
    plan = compile_plan(served)
    x = np.random.default_rng(7).standard_normal((4, 3, IMAGE_SIZE, IMAGE_SIZE))
    with no_grad():
        ref = served(Tensor(x)).data
    assert np.array_equal(plan.run(x), ref), "plan must be bit-identical"
    print(plan.describe())

    print("\n== 4. Serve over HTTP ==")
    metrics = ServeMetrics()
    pool = WorkerPool(
        lambda: compile_plan(served, private_engines=True),
        workers=1, max_batch=8, max_wait_ms=5.0, metrics=metrics,
    )
    pool.start()
    server = make_server(pool, metrics, port=0, model_name="lenet-demo",
                         input_ndim=3)
    host, port = server.server_address
    threading.Thread(target=server.serve_forever, daemon=True).start()
    base = f"http://{host}:{port}"

    print("healthz :", _get(f"{base}/healthz"))
    sample = x[0].tolist()
    reply = _post(f"{base}/predict", {"inputs": sample})
    print("predict :", {"predictions": reply["predictions"]})
    assert reply["predictions"][0] == int(np.argmax(ref[0]))

    burst = _post(f"{base}/predict", {"inputs": x.tolist()})
    print("burst   :", {"predictions": burst["predictions"]})

    snap = _get(f"{base}/metrics")
    print("metrics : predictions_total =",
          snap["counters"]["predictions_total"],
          " batch sizes =", snap["batch_size_histogram"])

    print("\n== 5. Drain and report ==")
    server.shutdown()
    server.server_close()
    pool.shutdown(drain=True)
    print(metrics.format_report())


if __name__ == "__main__":
    main()
