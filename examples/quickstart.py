"""Quickstart: retrain a small CNN with an approximate multiplier.

Walks the full Fig. 1 flow of the paper on a tiny, CPU-friendly setup:

1. pretrain a float LeNet on a synthetic CIFAR-10-like dataset,
2. swap every convolution for a LUT-backed approximate layer using the
   7-bit truncated multiplier of Fig. 2 (``mul7u_rm6``),
3. calibrate and freeze the fake quantization (Eqs. 7-8),
4. measure the collapsed "initial" accuracy,
5. retrain with the paper's difference-based gradient (Eqs. 4-6) and with
   the STE baseline, and compare.

Run:  python examples/quickstart.py
"""

from repro.data import DataLoader, SyntheticImageDataset
from repro.models import LeNet
from repro.multipliers import error_metrics, get_multiplier
from repro.retrain import (
    TrainConfig,
    Trainer,
    approximate_model,
    calibrate,
    evaluate,
    freeze,
)

MULTIPLIER = "mul7u_rm6"
EPOCHS_FLOAT = 6
EPOCHS_RETRAIN = 3


def main() -> None:
    train = SyntheticImageDataset(512, 10, 16, seed=0, split="train")
    test = SyntheticImageDataset(256, 10, 16, seed=0, split="test")

    print("== 1. Pretrain a float LeNet ==")
    model = LeNet(num_classes=10, image_size=16, seed=0)
    Trainer(model, TrainConfig(epochs=EPOCHS_FLOAT, batch_size=32, base_lr=3e-3)).fit(train)
    float_top1, _ = evaluate(model, test)
    print(f"float accuracy: {100 * float_top1:.2f}%")

    mult = get_multiplier(MULTIPLIER)
    print(f"\n== 2. AppMult: {MULTIPLIER} ({error_metrics(mult)}) ==")

    results = {}
    for method in ("ste", "difference"):
        approx = approximate_model(model, mult, gradient_method=method)
        calibrate(approx, DataLoader(train, batch_size=32), batches=4)
        freeze(approx)
        if method == "ste":
            initial_top1, _ = evaluate(approx, test)
            print(f"initial accuracy with {MULTIPLIER}: "
                  f"{100 * initial_top1:.2f}%  (collapsed from float)")
        print(f"\n== 3. Retrain with the {method!r} gradient ==")
        Trainer(
            approx, TrainConfig(epochs=EPOCHS_RETRAIN, batch_size=32)
        ).fit(train)
        top1, _ = evaluate(approx, test)
        results[method] = top1
        print(f"{method} retrained accuracy: {100 * top1:.2f}%")

    gain = 100 * (results["difference"] - results["ste"])
    print(
        f"\ndifference-based vs STE: {gain:+.2f} percentage points "
        f"(paper reports +4.10pp for VGG19 / +2.93pp for ResNet18 at scale)"
    )


if __name__ == "__main__":
    main()
